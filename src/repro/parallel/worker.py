"""Worker-process entry point for the process backend.

Each worker is warm-started exactly once: the parent ships a pickled
:class:`~repro.parallel.spec.DetectorSpec` at process creation, the
worker rebuilds the detector through a per-process cache
(:data:`_DETECTOR_CACHE`, keyed by the spec's content hash) and then
loops over the shared task queue.  Frames arrive either as
:class:`~repro.parallel.shm.FrameHandle` ring slots (zero-copy view) or
as a pickled-array fallback for frames that outgrew the ring slot.
Results go back the same way when they can: flat-encoded into the
ring's result lane (:mod:`repro.parallel.results`) with only a
:class:`~repro.parallel.results.ResultHandle` crossing the queue, else
pickled whole.

Fault isolation mirrors the thread backend exactly: a frame that makes
``detect()`` raise produces a ``("result", ..., "failed", ...)`` message
— never a dead worker.  On the terminal ``("stop",)`` task the worker
replies with its telemetry snapshot (the parent merges it; see
``MetricsRegistry.absorb_snapshot``) and exits cleanly.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, TYPE_CHECKING

from repro.parallel.results import ResultHandle, encode_result
from repro.parallel.shm import attach_view, detach_all, write_result_words

if TYPE_CHECKING:
    from multiprocessing.queues import Queue

    from repro.parallel.spec import DetectorSpec

#: Per-process detector cache: spec content hash -> built detector.
#: Lets a pool restart (same spec, same process via fork COW page reuse)
#: and any future in-process reuse skip model rebuild + validation.
_DETECTOR_CACHE: dict[str, Any] = {}


def get_detector(spec: "DetectorSpec") -> Any:
    """Rebuild (or reuse) the detector a spec describes."""
    key = spec.cache_key()
    detector = _DETECTOR_CACHE.get(key)
    if detector is None:
        detector = spec.build()
        _DETECTOR_CACHE[key] = detector
    return detector


def _snapshot_dict(detector: Any) -> dict[str, Any] | None:
    registry = getattr(detector, "telemetry", None)
    if registry is None or not getattr(registry, "enabled", False):
        return None
    return registry.snapshot().to_dict()


def worker_main(worker_id: int, spec_bytes: bytes,
                task_queue: "Queue[Any]", result_queue: "Queue[Any]",
                free_queue: "Queue[int]") -> None:
    """Process target: rebuild the detector, then serve frame tasks."""
    try:
        spec = pickle.loads(spec_bytes)
        detector = get_detector(spec)
    except BaseException as exc:  # startup failure: report, then die
        result_queue.put(
            ("dead", worker_id, f"{type(exc).__name__}: {exc}")
        )
        raise
    try:
        while True:
            task = task_queue.get()
            kind = task[0]
            if kind == "stop":
                result_queue.put(
                    ("snapshot", worker_id, _snapshot_dict(detector))
                )
                break
            _, generation, index, t0, handle, payload, rslot = task
            start = time.perf_counter()
            try:
                try:
                    if handle is not None:
                        frame = attach_view(handle)
                    else:
                        frame = pickle.loads(payload)
                    result = detector.detect(frame)
                finally:
                    # The slot is free once detect() returned (or
                    # raised): nothing reads the view afterwards.
                    if handle is not None:
                        free_queue.put(handle.slot)
                # Prefer the shared-memory result lane: flat-encode the
                # result into the slot the parent lent this frame and
                # send back only a word count.  Falls through to
                # pickling the object when no slot was lent, the result
                # is not lane-encodable (non-default label), or it
                # outgrew the slot.
                reply: Any = result
                if rslot is not None:
                    words = encode_result(result)
                    if words is not None and write_result_words(rslot, words):
                        reply = ResultHandle(n_words=words.size)
                message = ("result", generation, index, "ok", reply,
                           None, worker_id,
                           time.perf_counter() - start, t0)
            except Exception as exc:  # per-frame fault isolation
                message = ("result", generation, index, "failed", None,
                           f"{type(exc).__name__}: {exc}", worker_id,
                           time.perf_counter() - start, t0)
            result_queue.put(message)
    finally:
        detach_all()
