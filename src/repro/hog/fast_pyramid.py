"""Fast feature pyramids after Dollar et al. [4] — the paper's ancestor.

Dollar, Appel, Belongie, Perona (*Fast Feature Pyramids for Object
Detection*, TPAMI 2014) observed that channel features computed at one
scale predict the features at nearby scales via a power law,

    C(s) ~ C(s0) * (s / s0) ** -lambda,

so a pyramid only needs *real* feature extraction at octave scales
(1, 2, 4, ...); intermediate levels are resampled from the nearest real
level and magnitude-corrected.  "Their approach reduced the required
image resizing scales by a factor of 10" (paper, Section 2).  The
paper's own method is the lambda = 0 special case applied to
*normalized* HOG (normalization removes the power law), with a single
real level.

This module implements the genuine Dollar scheme over raw (pre-
normalization) cell histograms so the two can be compared, plus the
estimator for lambda.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError
from repro.hog.extractor import HogExtractor, HogFeatureGrid
from repro.hog.normalize import normalize_blocks
from repro.hog.scaling import scale_to_cells
from repro.imgproc.resize import Interpolation, rescale


def estimate_power_law(
    extractor: HogExtractor,
    images: Sequence[np.ndarray],
    scale: float = 2.0,
) -> float:
    """Estimate Dollar's lambda for raw HOG cell energy.

    For each image, compares mean cell-histogram energy at the original
    resolution against the image down-sampled by ``scale``;
    ``lambda = -mean(log ratio) / log(scale)``.  Dollar report
    lambda ~ 0.07 for normalized gradient channels on natural images;
    the synthetic dataset lands in the same small-positive regime.
    """
    if scale <= 1.0:
        raise ParameterError(f"scale must exceed 1.0, got {scale}")
    if not images:
        raise ParameterError("need at least one image")
    ratios = []
    for image in images:
        check_array(image, "image", ndim=(2, 3))
        base = extractor.extract(image).cells.mean()
        small = extractor.extract(rescale(image, 1.0 / scale)).cells.mean()
        if base > 0 and small > 0:
            ratios.append(np.log(small / base))
    if not ratios:
        raise ParameterError("all images produced zero feature energy")
    return float(-np.mean(ratios) / np.log(scale))


@dataclasses.dataclass
class FastFeaturePyramid:
    """A Dollar-style pyramid: real octave levels + extrapolated levels.

    Attributes
    ----------
    levels:
        Per-scale feature grids, ascending scale.
    real_scales:
        The scales where features were actually extracted from pixels.
    """

    levels: list[HogFeatureGrid]
    real_scales: list[float]

    def __iter__(self):
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, i: int) -> HogFeatureGrid:
        return self.levels[i]

    @property
    def scales(self) -> list[float]:
        return [level.scale for level in self.levels]

    @classmethod
    def build(
        cls,
        image: np.ndarray,
        scales: Sequence[float],
        extractor: HogExtractor,
        *,
        power_law: float = 0.07,
        octave: float = 2.0,
        method: Interpolation | str = Interpolation.BILINEAR,
    ) -> "FastFeaturePyramid":
        """Build the pyramid: extract per octave, extrapolate between.

        Parameters
        ----------
        scales:
            Requested pyramid scales (>= 1).
        power_law:
            Dollar's lambda; features resampled from a real level at
            ``s0`` to a level at ``s`` are multiplied by
            ``(s / s0) ** -power_law``.
        octave:
            Spacing of real extractions (2.0 = one per octave, Dollar's
            choice).
        """
        if not scales:
            raise ParameterError("scales must be non-empty")
        ordered = sorted(float(s) for s in scales)
        if ordered[0] < 1.0:
            raise ParameterError(f"scales must be >= 1, got {ordered[0]}")
        if octave <= 1.0:
            raise ParameterError(f"octave must exceed 1.0, got {octave}")

        params = extractor.params
        bx, by = params.blocks_per_window

        # Real levels at octave powers covering the requested range.
        max_scale = ordered[-1]
        real_scales = [1.0]
        while real_scales[-1] * octave <= max_scale * (1.0 + 1e-9):
            real_scales.append(real_scales[-1] * octave)
        real_grids: dict[float, HogFeatureGrid] = {}
        for s in real_scales:
            resized = image if s == 1.0 else rescale(image, 1.0 / s, method=method)
            if (
                resized.shape[0] < params.window_height
                or resized.shape[1] < params.window_width
            ):
                break
            grid = extractor.extract(resized)
            grid.scale = s
            real_grids[s] = grid
        if not real_grids:
            raise ParameterError("image is smaller than one detection window")

        levels = []
        for s in ordered:
            nearest = min(real_grids, key=lambda r: abs(np.log(s / r)))
            source = real_grids[nearest]
            if s == nearest:
                levels.append(source)
                continue
            rows, cols = source.cells.shape[0], source.cells.shape[1]
            out_cells = (
                max(1, round(rows * nearest / s)),
                max(1, round(cols * nearest / s)),
            )
            cells = scale_to_cells(source.cells, out_cells, method=method)
            cells = cells * (s / nearest) ** (-power_law)
            block_shape = params.block_grid_shape(*out_cells)
            if block_shape[0] < by or block_shape[1] < bx:
                continue
            blocks = normalize_blocks(cells, params)
            levels.append(
                HogFeatureGrid(cells=cells, blocks=blocks, params=params,
                               scale=float(s))
            )
        return cls(levels=levels, real_scales=sorted(real_grids))
