"""Cell orientation-histogram generation (paper Section 3.1).

Each gradient pixel votes into the two orientation bins nearest its
angle, with weights proportional to the gradient magnitude and the
angular distance to each bin center (bilinear orientation
interpolation).  With ``spatial_interpolation`` enabled the vote is
additionally split bilinearly across the four nearest cells (the full
trilinear scheme of Dalal & Triggs); with it disabled each pixel votes
only into its own cell, matching the hardware HOG pipeline of [10].

The implementation is fully vectorized: orientation votes are
scatter-accumulated over flattened (cell, bin) indices, and the
bilinear spatial weighting — separable by construction — is applied as
a column pass inside the scatter followed by a row pass as a single
banded matmul.  The scatter itself has two bitwise-identical backends
(see :func:`_scatter_add`): ``numpy.bincount`` on the allocating path,
``numpy.add.at`` into a reused arena slab when a
:class:`~repro.arena.BufferArena` is supplied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_array
from repro.errors import ShapeError
from repro.hog.parameters import HogParameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


def _orientation_votes(
    magnitude: np.ndarray,
    orientation: np.ndarray,
    params: HogParameters,
    arena: "BufferArena | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split each pixel's magnitude between its two nearest bins.

    Returns ``(bin_lo, w_lo, bin_hi, w_hi)`` — per-pixel bin indices and
    magnitude-scaled weights.  Bins wrap circularly, which is the
    correct topology for both unsigned ([0, pi)) and signed ([0, 2pi))
    orientations; angles must already lie in that range (the
    :func:`repro.imgproc.gradient_polar` contract), which is what lets
    the wrap be a single masked add instead of a full modulo.

    With an ``arena``, the four returned frames and both intermediate
    frames come from named slabs (``hog.vote_*``): the per-frame
    full-frame temporaries here are allocation-bound, not
    compute-bound, and this function runs once per extract.
    """
    n_bins = params.n_bins
    bin_width = params.orientation_span / n_bins
    shape = magnitude.shape
    # Continuous bin coordinate: bin centers sit at (i + 0.5) * width.
    # Identical op sequence on both paths (bitwise-equal results); the
    # arena path merely sources the six full-frame buffers from slabs.
    if arena is None:
        coord = orientation * (1.0 / bin_width)
        lo_f = np.empty_like(coord)
        lo = np.empty(shape, dtype=np.intp)
        bin_hi = np.empty(shape, dtype=np.intp)
        w_hi = np.empty_like(coord)
        w_lo = np.empty_like(coord)
    else:
        coord = arena.get("hog.vote_frac", shape)
        np.multiply(orientation, 1.0 / bin_width, out=coord)
        lo_f = arena.get("hog.vote_floor", shape)
        lo = arena.get("hog.vote_lo", shape, np.intp)
        bin_hi = arena.get("hog.vote_hi", shape, np.intp)
        w_hi = arena.get("hog.vote_w_hi", shape)
        w_lo = arena.get("hog.vote_w_lo", shape)
    coord -= 0.5
    np.floor(coord, out=lo_f)
    np.copyto(lo, lo_f, casting="unsafe")
    frac = coord
    frac -= lo_f
    # In-range orientations ([0, span)) give lo in [-1, n_bins - 1], so
    # a single masked wrap replaces the two full-frame np.mod calls.
    np.add(lo, 1, out=bin_hi)
    bin_hi[bin_hi == n_bins] = 0
    bin_lo = lo
    bin_lo[bin_lo < 0] += n_bins
    np.multiply(magnitude, frac, out=w_hi)
    np.subtract(magnitude, w_hi, out=w_lo)
    return bin_lo, w_lo, bin_hi, w_hi


def _scatter_add(
    target: np.ndarray,
    idx: np.ndarray,
    weights: np.ndarray,
    arena: "BufferArena | None",
) -> None:
    """``target[idx] += weights`` with duplicate indices accumulating.

    Without an arena this is ``numpy.bincount``, whose freshly
    allocated output array is the last per-frame full-histogram
    allocation of the hot path.  With one, the votes are scattered
    through ``numpy.add.at`` into a zeroed, reused arena slab
    (``hog.hist_scatter``) and the slab added into ``target`` — same
    temporary, no allocation.  Both backends accumulate element-wise in
    input order and add one whole intermediate array into ``target``,
    so their float summation grouping is identical and the results are
    bitwise equal (the ``tests/test_arena.py`` equivalence gate).
    """
    if arena is None:
        target += np.bincount(idx, weights=weights,
                              minlength=target.size)
        return
    slab = arena.zeros("hog.hist_scatter", (target.size,))
    np.add.at(slab, idx, weights)
    target += slab


def _axis_cell_votes(
    n_pixels: int, cell_size: int, n_cells: int, interpolate: bool
) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Per-pixel (cell index, weight) contributions along one axis.

    With interpolation, each pixel contributes to the two cells whose
    centers bracket it; contributions falling outside the grid get zero
    weight (index is clipped so it stays a valid bincount target).
    Without interpolation every pixel votes into its own cell with unit
    weight, reported as ``None`` so the caller can skip the spatial
    weighting entirely (the hardware-faithful [10] configuration).
    """
    if not interpolate:
        idx = np.arange(n_pixels) // cell_size
        return [(idx.astype(np.intp), None)]
    pos = (np.arange(n_pixels) + 0.5) / cell_size - 0.5
    lo = np.floor(pos).astype(np.intp)
    frac = pos - lo
    votes = []
    for cell, weight in ((lo, 1.0 - frac), (lo + 1, frac)):
        valid = (cell >= 0) & (cell < n_cells)
        votes.append((np.clip(cell, 0, n_cells - 1), weight * valid))
    return votes


def cell_histograms(
    magnitude: np.ndarray,
    orientation: np.ndarray,
    params: HogParameters,
    *,
    out: np.ndarray | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Accumulate per-cell orientation histograms.

    Parameters
    ----------
    magnitude, orientation:
        ``(H, W)`` gradient magnitude and angle (radians; unsigned
        angles must already lie in ``[0, pi)``, signed in ``[0, 2*pi)``
        — :func:`repro.imgproc.gradient_polar` produces this form).
    params:
        HOG configuration.
    out:
        Optional preallocated destination, ``(cell_rows, cell_cols,
        n_bins)`` float64, C-contiguous, not aliasing the inputs
        (docs/MEMORY.md ``out=`` contract; violations raise
        :class:`~repro.errors.ParameterError`).  Bitwise identical to
        the allocating path.
    arena:
        Optional :class:`~repro.arena.BufferArena` supplying the
        trilinear path's accumulator scratch (``hog.hist_acc``), the
        banded row-weight matrix (``hog.row_weights``), and the
        scatter slab (``hog.hist_scatter``) that replaces
        ``numpy.bincount``'s per-call output allocation.

    Returns
    -------
    ``(cell_rows, cell_cols, n_bins)`` float64 histogram grid.  Pixels
    beyond the last full cell are discarded (standard truncation).
    """
    mag = np.asarray(magnitude, dtype=np.float64)
    ori = np.asarray(orientation, dtype=np.float64)
    if mag.ndim != 2 or mag.shape != ori.shape:
        raise ShapeError(
            f"magnitude {mag.shape} and orientation {ori.shape} must be "
            "matching 2-D arrays"
        )
    check_array(mag, "magnitude", ndim=2, finite=True)
    check_array(ori, "orientation", ndim=2, finite=True)
    cs = params.cell_size
    n_rows, n_cols = mag.shape[0] // cs, mag.shape[1] // cs
    if n_rows == 0 or n_cols == 0:
        raise ShapeError(
            f"image {mag.shape} is smaller than one {cs}x{cs} cell"
        )
    h, w = n_rows * cs, n_cols * cs
    mag = mag[:h, :w]
    ori = ori[:h, :w]

    n_bins = params.n_bins
    if out is not None:
        from repro.arena import check_out

        check_out(out, "cell_histograms", (n_rows, n_cols, n_bins),
                  np.float64, mag, ori)

    bin_lo, w_lo, bin_hi, w_hi = _orientation_votes(mag, ori, params, arena)

    if not params.spatial_interpolation:
        # Every pixel votes into its own cell with unit spatial weight
        # (the hardware-faithful [10] configuration): two scatter
        # passes, no spatial weighting at all.
        [(row_idx, _)] = _axis_cell_votes(h, cs, n_rows, False)
        [(col_idx, _)] = _axis_cell_votes(w, cs, n_cols, False)
        cell_base = (row_idx[:, None] * n_cols + col_idx[None, :]) * n_bins
        if out is None:
            out = np.zeros((n_rows, n_cols, n_bins), dtype=np.float64)
        else:
            out.fill(0.0)
        hist = out.reshape(-1)
        scatter_idx = (
            np.empty((h, w), dtype=np.intp) if arena is None
            else arena.get("hog.vote_idx", (h, w), np.intp)
        )
        for bins, w_frame in ((bin_lo, w_lo), (bin_hi, w_hi)):
            np.add(cell_base, bins, out=scatter_idx)
            _scatter_add(hist, scatter_idx.ravel(), w_frame.ravel(),
                         arena)
        return out

    # Bilinear spatial voting is separable, so split it into two
    # passes instead of scattering all four (row, col) neighbor combos:
    # first accumulate column-interpolated votes at full pixel-row
    # resolution (the only data-dependent scatter, via the orientation
    # bin), then collapse pixel rows onto cell rows with one small
    # matmul against the banded row-weight matrix.  Halves the number
    # of full-frame scatter passes (8 -> 4) and drops the per-combo
    # H x W outer-product weight frames entirely.
    if arena is None:
        acc = np.zeros(h * n_cols * n_bins, dtype=np.float64)
        row_weights = np.zeros((n_rows, h), dtype=np.float64)
        base = np.empty((h, w), dtype=np.intp)
        scatter_idx = np.empty((h, w), dtype=np.intp)
        scatter_w = np.empty((h, w), dtype=np.float64)
    else:
        acc = arena.zeros("hog.hist_acc", (h * n_cols * n_bins,))
        row_weights = arena.zeros("hog.row_weights", (n_rows, h))
        base = arena.get("hog.vote_base", (h, w), np.intp)
        scatter_idx = arena.get("hog.vote_idx", (h, w), np.intp)
        scatter_w = arena.get("hog.vote_w", (h, w))
    row_base = (np.arange(h, dtype=np.intp) * (n_cols * n_bins))[:, None]
    for col_idx, col_w in _axis_cell_votes(w, cs, n_cols, True):
        np.add(row_base, col_idx * n_bins, out=base)
        for bins, w_frame in ((bin_lo, w_lo), (bin_hi, w_hi)):
            np.add(base, bins, out=scatter_idx)
            np.multiply(w_frame, col_w, out=scatter_w)
            _scatter_add(acc, scatter_idx.ravel(), scatter_w.ravel(),
                         arena)
    pixel_rows = np.arange(h)
    for row_idx, row_w in _axis_cell_votes(h, cs, n_rows, True):
        row_weights[row_idx, pixel_rows] += row_w
    acc2d = acc.reshape(h, n_cols * n_bins)
    if out is None:
        hist = row_weights @ acc2d
        return hist.reshape(n_rows, n_cols, n_bins)
    np.matmul(row_weights, acc2d, out=out.reshape(n_rows, n_cols * n_bins))
    return out
