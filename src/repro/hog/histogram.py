"""Cell orientation-histogram generation (paper Section 3.1).

Each gradient pixel votes into the two orientation bins nearest its
angle, with weights proportional to the gradient magnitude and the
angular distance to each bin center (bilinear orientation
interpolation).  With ``spatial_interpolation`` enabled the vote is
additionally split bilinearly across the four nearest cells (the full
trilinear scheme of Dalal & Triggs); with it disabled each pixel votes
only into its own cell, matching the hardware HOG pipeline of [10].

The implementation is fully vectorized: orientation votes are
accumulated with ``numpy.bincount`` over flattened (cell, bin)
indices, and the bilinear spatial weighting — separable by
construction — is applied as a column pass inside the bincount scatter
followed by a row pass as a single banded matmul.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ShapeError
from repro.hog.parameters import HogParameters


def _orientation_votes(
    magnitude: np.ndarray, orientation: np.ndarray, params: HogParameters
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split each pixel's magnitude between its two nearest bins.

    Returns ``(bin_lo, w_lo, bin_hi, w_hi)`` — per-pixel bin indices and
    magnitude-scaled weights.  Bins wrap circularly, which is the
    correct topology for both unsigned ([0, pi)) and signed ([0, 2pi))
    orientations; angles must already lie in that range (the
    :func:`repro.imgproc.gradient_polar` contract), which is what lets
    the wrap be a single masked add instead of a full modulo.
    """
    n_bins = params.n_bins
    bin_width = params.orientation_span / n_bins
    # Continuous bin coordinate: bin centers sit at (i + 0.5) * width.
    # Built with in-place ops — every full-frame temporary here is
    # allocation-bound, not compute-bound.
    coord = orientation * (1.0 / bin_width)
    coord -= 0.5
    lo_f = np.floor(coord)
    lo = lo_f.astype(np.intp)
    frac = coord
    frac -= lo_f
    # In-range orientations ([0, span)) give lo in [-1, n_bins - 1], so
    # a single masked wrap replaces the two full-frame np.mod calls.
    bin_hi = lo + 1
    bin_hi[bin_hi == n_bins] = 0
    bin_lo = lo
    bin_lo[bin_lo < 0] += n_bins
    w_hi = magnitude * frac
    w_lo = magnitude - w_hi
    return bin_lo, w_lo, bin_hi, w_hi


def _axis_cell_votes(
    n_pixels: int, cell_size: int, n_cells: int, interpolate: bool
) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Per-pixel (cell index, weight) contributions along one axis.

    With interpolation, each pixel contributes to the two cells whose
    centers bracket it; contributions falling outside the grid get zero
    weight (index is clipped so it stays a valid bincount target).
    Without interpolation every pixel votes into its own cell with unit
    weight, reported as ``None`` so the caller can skip the spatial
    weighting entirely (the hardware-faithful [10] configuration).
    """
    if not interpolate:
        idx = np.arange(n_pixels) // cell_size
        return [(idx.astype(np.intp), None)]
    pos = (np.arange(n_pixels) + 0.5) / cell_size - 0.5
    lo = np.floor(pos).astype(np.intp)
    frac = pos - lo
    votes = []
    for cell, weight in ((lo, 1.0 - frac), (lo + 1, frac)):
        valid = (cell >= 0) & (cell < n_cells)
        votes.append((np.clip(cell, 0, n_cells - 1), weight * valid))
    return votes


def cell_histograms(
    magnitude: np.ndarray,
    orientation: np.ndarray,
    params: HogParameters,
) -> np.ndarray:
    """Accumulate per-cell orientation histograms.

    Parameters
    ----------
    magnitude, orientation:
        ``(H, W)`` gradient magnitude and angle (radians; unsigned
        angles must already lie in ``[0, pi)``, signed in ``[0, 2*pi)``
        — :func:`repro.imgproc.gradient_polar` produces this form).
    params:
        HOG configuration.

    Returns
    -------
    ``(cell_rows, cell_cols, n_bins)`` float64 histogram grid.  Pixels
    beyond the last full cell are discarded (standard truncation).
    """
    mag = np.asarray(magnitude, dtype=np.float64)
    ori = np.asarray(orientation, dtype=np.float64)
    if mag.ndim != 2 or mag.shape != ori.shape:
        raise ShapeError(
            f"magnitude {mag.shape} and orientation {ori.shape} must be "
            "matching 2-D arrays"
        )
    check_array(mag, "magnitude", ndim=2, finite=True)
    check_array(ori, "orientation", ndim=2, finite=True)
    cs = params.cell_size
    n_rows, n_cols = mag.shape[0] // cs, mag.shape[1] // cs
    if n_rows == 0 or n_cols == 0:
        raise ShapeError(
            f"image {mag.shape} is smaller than one {cs}x{cs} cell"
        )
    h, w = n_rows * cs, n_cols * cs
    mag = mag[:h, :w]
    ori = ori[:h, :w]

    bin_lo, w_lo, bin_hi, w_hi = _orientation_votes(mag, ori, params)
    n_bins = params.n_bins

    if not params.spatial_interpolation:
        # Every pixel votes into its own cell with unit spatial weight
        # (the hardware-faithful [10] configuration): two bincounts,
        # no spatial weighting at all.
        [(row_idx, _)] = _axis_cell_votes(h, cs, n_rows, False)
        [(col_idx, _)] = _axis_cell_votes(w, cs, n_cols, False)
        cell_base = (row_idx[:, None] * n_cols + col_idx[None, :]) * n_bins
        hist = np.zeros(n_rows * n_cols * n_bins, dtype=np.float64)
        for bins, w in ((bin_lo, w_lo), (bin_hi, w_hi)):
            hist += np.bincount(
                (cell_base + bins).ravel(),
                weights=w.ravel(),
                minlength=hist.size,
            )
        return hist.reshape(n_rows, n_cols, n_bins)

    # Bilinear spatial voting is separable, so split it into two
    # passes instead of scattering all four (row, col) neighbor combos
    # through bincount: first accumulate column-interpolated votes at
    # full pixel-row resolution (the only data-dependent scatter, via
    # the orientation bin), then collapse pixel rows onto cell rows
    # with one small matmul against the banded row-weight matrix.
    # Halves the number of full-frame bincounts (8 -> 4) and drops the
    # per-combo H x W outer-product weight frames entirely.
    acc = np.zeros(h * n_cols * n_bins, dtype=np.float64)
    row_base = (np.arange(h, dtype=np.intp) * (n_cols * n_bins))[:, None]
    for col_idx, col_w in _axis_cell_votes(w, cs, n_cols, True):
        base = row_base + col_idx * n_bins
        for bins, w in ((bin_lo, w_lo), (bin_hi, w_hi)):
            acc += np.bincount(
                (base + bins).ravel(),
                weights=(w * col_w).ravel(),
                minlength=acc.size,
            )
    row_weights = np.zeros((n_rows, h), dtype=np.float64)
    pixel_rows = np.arange(h)
    for row_idx, row_w in _axis_cell_votes(h, cs, n_rows, True):
        row_weights[row_idx, pixel_rows] += row_w
    hist = row_weights @ acc.reshape(h, n_cols * n_bins)
    return hist.reshape(n_rows, n_cols, n_bins)
