"""Block grouping and normalization (paper Section 3.1, final stage).

Adjacent cells are grouped into overlapping blocks (2x2 cells, one-cell
stride by default) and each block's concatenated histogram is
contrast-normalized to suppress local brightness and contrast
variation.  L2-Hys — L2 normalization, clipping at 0.2, then
renormalization — is the Dalal-Triggs default and what the paper uses.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError, ShapeError
from repro.hog.parameters import BlockNormalization, HogParameters


def normalize_vector(
    vec: np.ndarray,
    method: BlockNormalization = BlockNormalization.L2_HYS,
    *,
    epsilon: float = 1e-6,
    l2_hys_clip: float = 0.2,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Normalize vectors along the last axis.

    Accepts any array shape; normalization is applied independently to
    each trailing-axis vector, so a whole ``(H, W, D)`` block grid can be
    normalized in one call.

    ``out``, when given, must match ``vec``'s shape with float64 dtype
    (docs/MEMORY.md ``out=`` contract).  Unlike most kernels, ``out``
    **may be** ``vec`` itself — every step is an elementwise ufunc, so
    in-place normalization is supported and bitwise identical to the
    allocating path.
    """
    v = np.asarray(vec, dtype=np.float64)
    if v.ndim == 0:
        raise ShapeError("normalize_vector needs at least a 1-D input")
    check_array(v, "vec", dtype=np.float64)
    if out is not None:
        from repro.arena import check_out

        check_out(out, "normalize_vector", v.shape, np.float64)

    if method is BlockNormalization.NONE:
        if out is None:
            return v.copy()
        np.copyto(out, v)
        return out
    if method is BlockNormalization.L1:
        norm = np.abs(v).sum(axis=-1, keepdims=True) + epsilon
        if out is None:
            return v / norm
        np.divide(v, norm, out=out)
        return out
    if method is BlockNormalization.L1_SQRT:
        norm = np.abs(v).sum(axis=-1, keepdims=True) + epsilon
        if out is None:
            return np.sqrt(np.abs(v) / norm) * np.sign(v)
        sign = np.sign(v)
        np.divide(np.abs(v), norm, out=out)
        np.sqrt(out, out=out)
        np.multiply(out, sign, out=out)
        return out
    if method is BlockNormalization.L2:
        norm = np.sqrt((v * v).sum(axis=-1, keepdims=True) + epsilon**2)
        if out is None:
            return v / norm
        np.divide(v, norm, out=out)
        return out
    if method is BlockNormalization.L2_HYS:
        norm = np.sqrt((v * v).sum(axis=-1, keepdims=True) + epsilon**2)
        if out is None:
            clipped = np.clip(v / norm, -l2_hys_clip, l2_hys_clip)
            norm2 = np.sqrt((clipped * clipped).sum(axis=-1, keepdims=True) + epsilon**2)
            return clipped / norm2
        np.divide(v, norm, out=out)
        np.clip(out, -l2_hys_clip, l2_hys_clip, out=out)
        norm2 = np.sqrt((out * out).sum(axis=-1, keepdims=True) + epsilon**2)
        np.divide(out, norm2, out=out)
        return out
    raise ParameterError(f"unsupported normalization: {method!r}")


def block_view(
    cells: np.ndarray,
    params: HogParameters,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Group a cell grid into overlapping blocks (no normalization).

    Parameters
    ----------
    cells:
        ``(cell_rows, cell_cols, n_bins)`` histogram grid.
    params:
        HOG configuration (block size / stride / bins).
    out:
        Optional preallocated ``(block_rows, block_cols, block_dim)``
        float64 destination, C-contiguous and not aliasing ``cells``
        (docs/MEMORY.md ``out=`` contract).  The strided window view is
        copied into it instead of materializing a fresh array.

    Returns
    -------
    ``(block_rows, block_cols, block_dim)`` array.  Within a block,
    features are ordered cell-row-major then bin — the convention every
    other module (window descriptors, the hardware feature memory)
    assumes.
    """
    c = np.asarray(cells, dtype=np.float64)
    if c.ndim != 3 or c.shape[2] != params.n_bins:
        raise ShapeError(
            f"cells must be (rows, cols, {params.n_bins}), got {c.shape}"
        )
    check_array(c, "cells", ndim=3, dtype=np.float64)
    bs, stride = params.block_size, params.block_stride
    n_rows, n_cols = params.block_grid_shape(c.shape[0], c.shape[1])
    if n_rows == 0 or n_cols == 0:
        raise ShapeError(
            f"cell grid {c.shape[:2]} is smaller than one {bs}x{bs} block"
        )
    windows = np.lib.stride_tricks.sliding_window_view(c, (bs, bs), axis=(0, 1))
    # windows: (rows-bs+1, cols-bs+1, n_bins, bs, bs) -> stride and reorder
    windows = windows[::stride, ::stride]
    windows = np.moveaxis(windows, 2, 4)  # (.., bs, bs, n_bins)
    if out is None:
        return windows.reshape(n_rows, n_cols, params.block_dim)
    from repro.arena import check_out

    check_out(out, "block_view", (n_rows, n_cols, params.block_dim),
              np.float64, c)
    np.copyto(
        out.reshape(n_rows, n_cols, bs, bs, params.n_bins), windows
    )
    return out


def normalize_blocks(
    cells: np.ndarray,
    params: HogParameters,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Group cells into blocks and contrast-normalize each block.

    Returns the normalized ``(block_rows, block_cols, block_dim)`` grid
    — the *normalized HOG features* that the paper's scaling module
    down-samples and that N-HOGMem stores in hardware.

    With ``out=`` the whole stage runs in a single preallocated buffer:
    the block view is copied into ``out`` and normalized in place
    (bitwise identical to the allocating path).
    """
    blocks = check_array(block_view(cells, params, out=out), "blocks",
                         ndim=3, dtype=np.float64)
    return normalize_vector(
        blocks,
        params.normalization,
        epsilon=params.epsilon,
        l2_hys_clip=params.l2_hys_clip,
        out=out,
    )
