"""Block grouping and normalization (paper Section 3.1, final stage).

Adjacent cells are grouped into overlapping blocks (2x2 cells, one-cell
stride by default) and each block's concatenated histogram is
contrast-normalized to suppress local brightness and contrast
variation.  L2-Hys — L2 normalization, clipping at 0.2, then
renormalization — is the Dalal-Triggs default and what the paper uses.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError, ShapeError
from repro.hog.parameters import BlockNormalization, HogParameters


def normalize_vector(
    vec: np.ndarray,
    method: BlockNormalization = BlockNormalization.L2_HYS,
    *,
    epsilon: float = 1e-6,
    l2_hys_clip: float = 0.2,
) -> np.ndarray:
    """Normalize vectors along the last axis.

    Accepts any array shape; normalization is applied independently to
    each trailing-axis vector, so a whole ``(H, W, D)`` block grid can be
    normalized in one call.
    """
    v = np.asarray(vec, dtype=np.float64)
    if v.ndim == 0:
        raise ShapeError("normalize_vector needs at least a 1-D input")
    check_array(v, "vec", dtype=np.float64)

    if method is BlockNormalization.NONE:
        return v.copy()
    if method is BlockNormalization.L1:
        norm = np.abs(v).sum(axis=-1, keepdims=True) + epsilon
        return v / norm
    if method is BlockNormalization.L1_SQRT:
        norm = np.abs(v).sum(axis=-1, keepdims=True) + epsilon
        return np.sqrt(np.abs(v) / norm) * np.sign(v)
    if method is BlockNormalization.L2:
        norm = np.sqrt((v * v).sum(axis=-1, keepdims=True) + epsilon**2)
        return v / norm
    if method is BlockNormalization.L2_HYS:
        norm = np.sqrt((v * v).sum(axis=-1, keepdims=True) + epsilon**2)
        clipped = np.clip(v / norm, -l2_hys_clip, l2_hys_clip)
        norm2 = np.sqrt((clipped * clipped).sum(axis=-1, keepdims=True) + epsilon**2)
        return clipped / norm2
    raise ParameterError(f"unsupported normalization: {method!r}")


def block_view(cells: np.ndarray, params: HogParameters) -> np.ndarray:
    """Group a cell grid into overlapping blocks (no normalization).

    Parameters
    ----------
    cells:
        ``(cell_rows, cell_cols, n_bins)`` histogram grid.
    params:
        HOG configuration (block size / stride / bins).

    Returns
    -------
    ``(block_rows, block_cols, block_dim)`` array.  Within a block,
    features are ordered cell-row-major then bin — the convention every
    other module (window descriptors, the hardware feature memory)
    assumes.
    """
    c = np.asarray(cells, dtype=np.float64)
    if c.ndim != 3 or c.shape[2] != params.n_bins:
        raise ShapeError(
            f"cells must be (rows, cols, {params.n_bins}), got {c.shape}"
        )
    check_array(c, "cells", ndim=3, dtype=np.float64)
    bs, stride = params.block_size, params.block_stride
    n_rows, n_cols = params.block_grid_shape(c.shape[0], c.shape[1])
    if n_rows == 0 or n_cols == 0:
        raise ShapeError(
            f"cell grid {c.shape[:2]} is smaller than one {bs}x{bs} block"
        )
    windows = np.lib.stride_tricks.sliding_window_view(c, (bs, bs), axis=(0, 1))
    # windows: (rows-bs+1, cols-bs+1, n_bins, bs, bs) -> stride and reorder
    windows = windows[::stride, ::stride]
    windows = np.moveaxis(windows, 2, 4)  # (.., bs, bs, n_bins)
    return windows.reshape(n_rows, n_cols, params.block_dim)


def normalize_blocks(cells: np.ndarray, params: HogParameters) -> np.ndarray:
    """Group cells into blocks and contrast-normalize each block.

    Returns the normalized ``(block_rows, block_cols, block_dim)`` grid
    — the *normalized HOG features* that the paper's scaling module
    down-samples and that N-HOGMem stores in hardware.
    """
    blocks = check_array(block_view(cells, params), "blocks", ndim=3,
                         dtype=np.float64)
    return normalize_vector(
        blocks,
        params.normalization,
        epsilon=params.epsilon,
        l2_hys_clip=params.l2_hys_clip,
    )
