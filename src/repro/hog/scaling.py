"""HOG feature down-scaling — the paper's core algorithmic contribution.

Conventional multi-scale HOG+SVM detection re-runs the expensive
histogram-generation stage once per image-pyramid level.  The paper
instead extracts HOG features *once* and down-samples the feature grid
itself (Section 4, Figure 3b): detecting pedestrians ``s`` times larger
than the trained 64x128 window only requires resampling the feature
grid by ``1/s`` and re-running the (cheap) classifier.

Two scaling surfaces are supported:

``blocks`` (paper's literal description)
    Resample the *normalized* block-feature grid.  Optionally
    re-normalize each resampled block.
``cells``
    Resample the raw cell histograms, then redo block normalization.
    Slightly more faithful to what a pixel-domain down-scale would have
    produced; the difference is an ablation bench
    (``benchmarks/bench_ablation_scaling.py``).

Both kernels support an optional Dollar-style power-law magnitude
correction (``feature *= s ** power_law``) as an extension hook; the
paper itself uses no correction (normalized features are approximately
scale invariant), so the default exponent is 0.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError, ShapeError
from repro.hog.extractor import HogFeatureGrid
from repro.hog.normalize import normalize_blocks, normalize_vector
from repro.imgproc.resize import Interpolation, resize_grid
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY


def scale_to_cells(
    grid: np.ndarray,
    out_shape: tuple[int, int],
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Resample a feature grid ``(H, W, D)`` to an explicit ``(rows, cols)``."""
    arr = np.asarray(grid, dtype=np.float64)
    if arr.ndim != 3:
        raise ShapeError(f"feature grid must be 3-D, got shape {arr.shape}")
    check_array(arr, "grid", ndim=3, dtype=np.float64)
    return resize_grid(arr, out_shape, method=method)


def scale_feature_grid(
    grid: np.ndarray,
    scale: float,
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Down-sample a feature grid by ``1/scale``.

    ``scale > 1`` shrinks the grid (to detect larger objects);
    ``scale < 1`` grows it.  Output dims are ``max(1, round(dim/scale))``.
    """
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    arr = np.asarray(grid, dtype=np.float64)
    if arr.ndim != 3:
        raise ShapeError(f"feature grid must be 3-D, got shape {arr.shape}")
    check_array(arr, "grid", ndim=3, dtype=np.float64)
    out_shape = (
        max(1, round(arr.shape[0] / scale)),
        max(1, round(arr.shape[1] / scale)),
    )
    return scale_to_cells(arr, out_shape, method=method)


class FeatureScaler:
    """Produces scaled :class:`HogFeatureGrid` levels from a base grid.

    Parameters
    ----------
    mode:
        ``"blocks"`` resamples the normalized block grid (paper's
        description); ``"cells"`` resamples raw cell histograms and
        re-normalizes.
    method:
        Interpolation kernel for the resampling.
    renormalize:
        Only meaningful for ``mode="blocks"``: re-apply block
        normalization to each resampled block vector.
    power_law:
        Dollar-style magnitude correction exponent (default 0 = off).
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; when
        enabled, :meth:`scale_grid` is timed under a ``scale.grid``
        span with a ``scale.grids`` counter.
    """

    def __init__(
        self,
        mode: str = "blocks",
        method: Interpolation | str = Interpolation.BILINEAR,
        *,
        renormalize: bool = False,
        power_law: float = 0.0,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        if mode not in ("blocks", "cells"):
            raise ParameterError(
                f"mode must be 'blocks' or 'cells', got {mode!r}"
            )
        self.mode = mode
        self.method = Interpolation(method) if isinstance(method, str) else method
        self.renormalize = renormalize
        self.power_law = power_law
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def scale_grid(self, grid: HogFeatureGrid, scale: float) -> HogFeatureGrid:
        """Return a new grid describing objects ``scale`` times larger.

        The returned grid's ``scale`` attribute is ``grid.scale * scale``
        so scalers compose (the hardware pipelines one scaler per level,
        Figure 6, each resampling the *previous* level's features).
        """
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        with self.telemetry.span("scale.grid"):
            result = self._scale_grid(grid, scale)
        if self.telemetry.enabled:
            self.telemetry.inc("scale.grids")
        return result

    def _scale_grid(self, grid: HogFeatureGrid, scale: float) -> HogFeatureGrid:
        params = grid.params
        cell_rows, cell_cols = grid.cell_grid_shape
        out_cells = (
            max(1, round(cell_rows / scale)),
            max(1, round(cell_cols / scale)),
        )
        if self.mode == "cells":
            cells = scale_to_cells(grid.cells, out_cells, method=self.method)
            if self.power_law:
                cells = cells * float(scale) ** self.power_law
            blocks = normalize_blocks(cells, params)
        else:
            out_blocks = params.block_grid_shape(*out_cells)
            if out_blocks == (0, 0):
                raise ShapeError(
                    f"scale {scale} leaves fewer cells {out_cells} than one block"
                )
            blocks = scale_to_cells(grid.blocks, out_blocks, method=self.method)
            if self.power_law:
                blocks = blocks * float(scale) ** self.power_law
            if self.renormalize:
                blocks = normalize_vector(
                    blocks,
                    params.normalization,
                    epsilon=params.epsilon,
                    l2_hys_clip=params.l2_hys_clip,
                )
            # Keep a consistently-scaled cell grid alongside the blocks
            # so downstream levels can rescale from either surface; the
            # power-law correction must land on both, or a chained level
            # that re-derives features from the cells would lose it.
            cells = scale_to_cells(grid.cells, out_cells, method=self.method)
            if self.power_law:
                cells = cells * float(scale) ** self.power_law
        return HogFeatureGrid(
            cells=cells,
            blocks=blocks,
            params=params,
            scale=grid.scale * scale,
        )

    def rescale_to_window(self, grid: HogFeatureGrid) -> np.ndarray:
        """Resample a whole grid down to exactly one detection window.

        This is the paper's Figure 3(b) verification protocol: the test
        image is a single up-sampled window (e.g. 70x141 pixels for
        scale 1.1), its HOG grid is extracted at full size, and the
        features are resized to the trained model's window dimensions
        (8x16 cells -> 7x15 blocks -> 3780 features by default).
        """
        params = grid.params
        cells_x, cells_y = params.cells_per_window
        blocks_x, blocks_y = params.blocks_per_window
        if self.mode == "cells":
            cells = scale_to_cells(grid.cells, (cells_y, cells_x), method=self.method)
            blocks = normalize_blocks(cells, params)
        else:
            blocks = scale_to_cells(
                grid.blocks, (blocks_y, blocks_x), method=self.method
            )
            if self.renormalize:
                blocks = normalize_vector(
                    blocks,
                    params.normalization,
                    epsilon=params.epsilon,
                    l2_hys_clip=params.l2_hys_clip,
                )
        return blocks.reshape(-1)

    def scale_window_descriptor(
        self, grid: HogFeatureGrid, scale: float
    ) -> np.ndarray:
        """Scale a grid and return the descriptor of its (0, 0) window.

        Convenience for the paper's Figure 3(b) verification protocol:
        the test image is a whole up-sampled window, so after scaling
        the grid *is* one detection window.
        """
        scaled = self.scale_grid(grid, scale)
        bx, by = grid.params.blocks_per_window
        rows, cols = scaled.block_grid_shape
        if rows < by or cols < bx:
            raise ShapeError(
                f"scaled grid {rows}x{cols} blocks cannot hold a "
                f"{by}x{bx}-block window"
            )
        return scaled.window_descriptor(0, 0)
