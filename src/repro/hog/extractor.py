"""End-to-end HOG feature extraction and window descriptor assembly.

:class:`HogExtractor` runs the full chain of Figure 1's feature side —
(optional gamma) -> gradients -> cell histograms -> block normalization
— and returns a :class:`HogFeatureGrid`, from which descriptors for any
sliding-window position can be read without touching pixels again.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_array
from repro.errors import ShapeError
from repro.hog.histogram import cell_histograms
from repro.hog.normalize import normalize_blocks
from repro.hog.parameters import HogParameters
from repro.imgproc.convert import gamma_correct
from repro.imgproc.gradients import gradient_polar
from repro.imgproc.validate import ensure_grayscale
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


def window_descriptor_matrix(
    blocks: np.ndarray,
    blocks_y: int,
    blocks_x: int,
    stride: int = 1,
) -> np.ndarray:
    """All sliding-window descriptors of a block grid, stacked ``(N, D)``.

    The single descriptor-assembly implementation shared by
    :meth:`HogFeatureGrid.descriptor_matrix` (the grid's own window
    geometry) and :func:`repro.detect.classify_grid_windows` (arbitrary
    ``blocks_y x blocks_x`` extents, e.g. rescaled models).  Row order
    is row-major over the anchors ``range(0, rows, stride) x
    range(0, cols, stride)``; each row concatenates the window's blocks
    row-major (``blocks_y * blocks_x * block_dim`` features).  Built
    from a strided view, so it costs one copy of the output matrix —
    which is exactly the copy the ``conv`` scorer
    (:mod:`repro.detect.scoring`) exists to avoid.
    """
    check_array(blocks, "blocks", ndim=3)
    dim = blocks.shape[2]
    length = blocks_y * blocks_x * dim
    rows = blocks.shape[0] - blocks_y + 1
    cols = blocks.shape[1] - blocks_x + 1
    if rows <= 0 or cols <= 0:
        return np.empty((0, length))
    view = np.lib.stride_tricks.sliding_window_view(
        blocks, (blocks_y, blocks_x), axis=(0, 1)
    )
    # view: (rows, cols, dim, by, bx) -> (rows, cols, by, bx, dim)
    view = np.moveaxis(view[::stride, ::stride], 2, 4)
    n = view.shape[0] * view.shape[1]
    return view.reshape(n, length)


@dataclasses.dataclass
class HogFeatureGrid:
    """HOG features for a whole image.

    Attributes
    ----------
    cells:
        Raw (un-normalized) ``(cell_rows, cell_cols, n_bins)`` histograms.
    blocks:
        Normalized ``(block_rows, block_cols, block_dim)`` features.
    params:
        The configuration the grid was extracted with.
    scale:
        The pyramid scale this grid represents; 1.0 for a grid extracted
        directly from an image.  A grid at scale ``s`` describes objects
        that are ``s`` times larger than the trained window in the
        original image.
    """

    cells: np.ndarray
    blocks: np.ndarray
    params: HogParameters
    scale: float = 1.0

    @property
    def cell_grid_shape(self) -> tuple[int, int]:
        return self.cells.shape[0], self.cells.shape[1]

    @property
    def block_grid_shape(self) -> tuple[int, int]:
        return self.blocks.shape[0], self.blocks.shape[1]

    @property
    def n_window_positions(self) -> tuple[int, int]:
        """``(rows, cols)`` of valid window anchors at one-cell stride."""
        bx, by = self.params.blocks_per_window
        rows = self.blocks.shape[0] - by + 1
        cols = self.blocks.shape[1] - bx + 1
        return max(0, rows), max(0, cols)

    def window_descriptor(self, cell_row: int, cell_col: int) -> np.ndarray:
        """Descriptor for the window anchored at cell ``(row, col)``.

        The anchor is the window's top-left cell; the descriptor
        concatenates its ``blocks_per_window`` blocks row-major,
        yielding ``params.descriptor_length`` features (3780 for the
        default layout).
        """
        bx, by = self.params.blocks_per_window
        rows, cols = self.n_window_positions
        if not (0 <= cell_row < rows and 0 <= cell_col < cols):
            raise ShapeError(
                f"window anchor ({cell_row}, {cell_col}) out of range "
                f"{rows}x{cols}"
            )
        return self.blocks[
            cell_row : cell_row + by, cell_col : cell_col + bx
        ].ravel()

    def window_positions(self, stride: int = 1) -> Iterator[tuple[int, int]]:
        """Iterate window anchors ``(cell_row, cell_col)`` at ``stride`` cells."""
        rows, cols = self.n_window_positions
        for r in range(0, rows, stride):
            for c in range(0, cols, stride):
                yield r, c

    def descriptor_matrix(self, stride: int = 1) -> np.ndarray:
        """All window descriptors stacked into ``(n_windows, D)``.

        Row order matches :meth:`window_positions`.  Delegates to
        :func:`window_descriptor_matrix` with the grid's own window
        geometry; one copy of the output matrix, nothing else.
        """
        bx, by = self.params.blocks_per_window
        return window_descriptor_matrix(self.blocks, by, bx, stride=stride)


class HogExtractor:
    """Extracts HOG feature grids and window descriptors from images.

    Parameters
    ----------
    params:
        HOG window/descriptor geometry.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; when
        enabled, :meth:`extract` times the gradient / histogram /
        normalize sub-stages (the split the paper's cost argument is
        about) under ``hog.*`` spans.
    arena:
        Optional :class:`~repro.arena.BufferArena`.  When set,
        :meth:`extract` writes the magnitude / orientation / cell /
        block arrays into arena slabs (``hog.magnitude`` …
        ``hog.blocks``) instead of allocating them — zero hot-path
        allocations after the first frame warms the slabs.  The
        returned :class:`HogFeatureGrid` then borrows the arena's
        buffers: it is valid only until the next :meth:`extract` call
        on this extractor (docs/MEMORY.md, arena lifetime).  An
        extractor that must produce multiple simultaneously-live grids
        per frame (the image-pyramid strategy) must not be given an
        arena.
    """

    def __init__(
        self,
        params: HogParameters | None = None,
        telemetry: MetricsRegistry | None = None,
        arena: BufferArena | None = None,
    ) -> None:
        self.params = params if params is not None else HogParameters()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.arena = arena

    def extract(self, image: np.ndarray) -> HogFeatureGrid:
        """Extract the full feature grid of ``image``.

        The image must contain at least one block's worth of cells.
        """
        tm = self.telemetry
        arena = self.arena
        with tm.span("hog.extract"):
            with tm.span("hog.gradient"):
                gray = ensure_grayscale(image)
                if self.params.gamma is not None:
                    gray = gamma_correct(
                        np.maximum(gray, 0.0), self.params.gamma
                    )
                if arena is None:
                    magnitude, orientation = gradient_polar(
                        gray,
                        method=self.params.gradient_filter,
                        signed=self.params.signed_gradients,
                    )
                else:
                    magnitude, orientation = gradient_polar(
                        gray,
                        method=self.params.gradient_filter,
                        signed=self.params.signed_gradients,
                        out_magnitude=arena.get("hog.magnitude", gray.shape),
                        out_orientation=arena.get(
                            "hog.orientation", gray.shape
                        ),
                        arena=arena,
                    )
            with tm.span("hog.histogram"):
                cells = cell_histograms(
                    magnitude, orientation, self.params,
                    out=self._cells_dest(arena, gray.shape), arena=arena,
                )
            with tm.span("hog.normalize"):
                blocks = normalize_blocks(
                    cells, self.params,
                    out=self._blocks_dest(arena, cells.shape),
                )
        if tm.enabled:
            tm.inc("hog.extractions")
            tm.inc("hog.pixels", int(gray.size))
        return HogFeatureGrid(cells=cells, blocks=blocks, params=self.params)

    def _cells_dest(
        self, arena: BufferArena | None, image_shape: tuple[int, ...]
    ) -> np.ndarray | None:
        """Arena slab for the cell grid of an ``image_shape`` frame.

        ``None`` (let the kernel allocate) without an arena or when the
        frame is smaller than one cell — the kernel raises its own
        :class:`~repro.errors.ShapeError` in that case.
        """
        if arena is None:
            return None
        cs = self.params.cell_size
        n_rows, n_cols = image_shape[0] // cs, image_shape[1] // cs
        if n_rows == 0 or n_cols == 0:
            return None
        return arena.get("hog.cells", (n_rows, n_cols, self.params.n_bins))

    def _blocks_dest(
        self, arena: BufferArena | None, cells_shape: tuple[int, ...]
    ) -> np.ndarray | None:
        """Arena slab for the block grid of a ``cells_shape`` cell grid."""
        if arena is None:
            return None
        n_rows, n_cols = self.params.block_grid_shape(
            cells_shape[0], cells_shape[1]
        )
        if n_rows == 0 or n_cols == 0:
            return None
        return arena.get(
            "hog.blocks", (n_rows, n_cols, self.params.block_dim)
        )

    def extract_window(self, window_image: np.ndarray) -> np.ndarray:
        """Descriptor of a single window-sized image.

        The image must be exactly ``window_height x window_width``
        pixels (use :func:`repro.imgproc.resize` first otherwise).
        """
        gray = ensure_grayscale(window_image)
        expected = (self.params.window_height, self.params.window_width)
        if gray.shape != expected:
            raise ShapeError(
                f"window image is {gray.shape}, expected {expected}"
            )
        return self.extract(gray).window_descriptor(0, 0)
