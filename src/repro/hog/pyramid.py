"""Image pyramids and HOG feature pyramids.

:class:`ImagePyramid` is the conventional pipeline of Figure 1: resize
the image for every scale, then re-extract HOG.  :class:`FeaturePyramid`
is the paper's pipeline: extract HOG once, then down-sample features per
scale (Figures 3b and 6).  Both produce per-scale
:class:`~repro.hog.extractor.HogFeatureGrid` levels with identical
downstream semantics, so the detector can swap strategies freely.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.hog.extractor import HogExtractor, HogFeatureGrid
from repro.hog.scaling import FeatureScaler
from repro.imgproc.resize import Interpolation, rescale


def pyramid_scales(
    n_scales: int,
    step: float = 1.2,
    start: float = 1.0,
) -> list[float]:
    """Geometric scale ladder ``[start, start*step, ...]``.

    The paper's hardware supports two scales; software experiments may
    use longer ladders (e.g. the eighteen scales of Hahnle et al. [9]).
    """
    if n_scales < 1:
        raise ParameterError(f"n_scales must be >= 1, got {n_scales}")
    if step <= 1.0:
        raise ParameterError(f"step must exceed 1.0, got {step}")
    if start <= 0:
        raise ParameterError(f"start must be positive, got {start}")
    return [start * step**i for i in range(n_scales)]


@dataclasses.dataclass
class _PyramidBase:
    """Shared container behaviour for both pyramid kinds."""

    levels: list[HogFeatureGrid]

    def __iter__(self) -> Iterator[HogFeatureGrid]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, i: int) -> HogFeatureGrid:
        return self.levels[i]

    @property
    def scales(self) -> list[float]:
        return [level.scale for level in self.levels]


@dataclasses.dataclass
class ImagePyramid(_PyramidBase):
    """Conventional multi-scale features: resize image, re-extract HOG."""

    @classmethod
    def build(
        cls,
        image: np.ndarray,
        scales: Sequence[float],
        extractor: HogExtractor,
        method: Interpolation | str = Interpolation.BILINEAR,
    ) -> "ImagePyramid":
        """Extract one HOG grid per scale from resized copies of ``image``.

        A scale ``s`` resizes the image by ``1/s`` (larger objects shrink
        into the fixed 64x128 window).  Scales whose resized image no
        longer holds a full detection window are skipped.
        """
        if not scales:
            raise ParameterError("scales must be non-empty")
        levels = []
        wh = extractor.params.window_height
        ww = extractor.params.window_width
        for s in scales:
            if s <= 0:
                raise ParameterError(f"scales must be positive, got {s}")
            resized = image if s == 1.0 else rescale(image, 1.0 / s, method=method)
            if resized.shape[0] < wh or resized.shape[1] < ww:
                continue
            grid = extractor.extract(resized)
            grid.scale = float(s)
            levels.append(grid)
        return cls(levels=levels)


@dataclasses.dataclass
class FeaturePyramid(_PyramidBase):
    """The paper's pyramid: HOG once, features down-sampled per scale."""

    @classmethod
    def build(
        cls,
        image: np.ndarray,
        scales: Sequence[float],
        extractor: HogExtractor,
        scaler: FeatureScaler | None = None,
        *,
        chained: bool = True,
        base: HogFeatureGrid | None = None,
    ) -> "FeaturePyramid":
        """Extract HOG once and derive every other level by resampling.

        Parameters
        ----------
        chained:
            If True (default — matches the hardware's cascade of scaling
            modules in Figure 6) each level is resampled from the
            *previous* level; otherwise every level is resampled
            directly from the base grid (lower accumulation error,
            higher per-level cost).
        base:
            Optionally a precomputed scale-1.0 grid of ``image`` (lets
            callers time extraction and pyramid construction separately).
        """
        if not scales:
            raise ParameterError("scales must be non-empty")
        if scaler is None:
            scaler = FeatureScaler()
        ordered = sorted(float(s) for s in scales)
        if ordered[0] <= 0:
            raise ParameterError(f"scales must be positive, got {ordered[0]}")

        if base is None:
            base = extractor.extract(image)
        base.scale = 1.0
        wh = extractor.params.window_height
        ww = extractor.params.window_width
        bx, by = extractor.params.blocks_per_window

        levels: list[HogFeatureGrid] = []
        prev = base
        for s in ordered:
            if s == 1.0:
                level = base
            else:
                source = prev if chained else base
                relative = s / source.scale
                level = scaler.scale_grid(source, relative)
            rows, cols = level.block_grid_shape
            if rows < by or cols < bx:
                break
            # Guard against the source image itself being too small.
            if image.shape[0] < wh or image.shape[1] < ww:
                break
            levels.append(level)
            prev = level
        return cls(levels=levels)
