"""HOG descriptor parameterization.

The defaults follow the paper (and Dalal & Triggs): 8x8-pixel cells,
2x2-cell blocks with one-cell stride, 9 unsigned orientation bins, and a
64x128-pixel detection window — 8x16 cells, 7x15 blocks, 3780 features.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ParameterError
from repro.imgproc.gradients import GradientFilter


class BlockNormalization(enum.Enum):
    """Block normalization scheme (Dalal & Triggs Section 6.4)."""

    L1 = "l1"
    L1_SQRT = "l1-sqrt"
    L2 = "l2"
    L2_HYS = "l2-hys"
    NONE = "none"


@dataclasses.dataclass(frozen=True)
class HogParameters:
    """Immutable HOG configuration.

    Attributes
    ----------
    cell_size:
        Cell side in pixels (paper: 8).
    block_size:
        Block side in cells (paper: 2).
    block_stride:
        Block stride in cells (paper: 1, i.e. 50 % overlap).
    n_bins:
        Orientation bins over ``[0, pi)`` (paper: 9).
    signed_gradients:
        If True, bins span ``[0, 2*pi)`` instead.  The paper (and the
        human-detection literature) uses unsigned gradients.
    window_width, window_height:
        Detection window in pixels (paper: 64x128).
    normalization:
        Block normalization scheme; L2-Hys is the Dalal-Triggs default.
    l2_hys_clip:
        Clipping threshold for L2-Hys renormalization.
    gradient_filter:
        Derivative mask; centered ``[-1, 0, 1]`` is the HOG default.
    gamma:
        Optional power-law compression applied before gradients
        (``None`` disables; 0.5 = sqrt compression).
    spatial_interpolation:
        If True (default), pixels vote into the four nearest cells with
        bilinear weights (trilinear voting together with the orientation
        interpolation).  If False, each pixel votes only into its own
        cell — the behaviour of the FPGA pipeline of Hemmati et al. [10].
    epsilon:
        Normalization regularizer.
    """

    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    n_bins: int = 9
    signed_gradients: bool = False
    window_width: int = 64
    window_height: int = 128
    normalization: BlockNormalization = BlockNormalization.L2_HYS
    l2_hys_clip: float = 0.2
    gradient_filter: GradientFilter = GradientFilter.CENTERED
    gamma: float | None = None
    spatial_interpolation: bool = True
    epsilon: float = 1e-6

    def __post_init__(self) -> None:
        if self.cell_size < 1:
            raise ParameterError(f"cell_size must be >= 1, got {self.cell_size}")
        if self.block_size < 1:
            raise ParameterError(f"block_size must be >= 1, got {self.block_size}")
        if not 1 <= self.block_stride <= self.block_size:
            raise ParameterError(
                f"block_stride must be in [1, block_size], got {self.block_stride}"
            )
        if self.n_bins < 2:
            raise ParameterError(f"n_bins must be >= 2, got {self.n_bins}")
        if self.window_width % self.cell_size or self.window_height % self.cell_size:
            raise ParameterError(
                f"window {self.window_height}x{self.window_width} must be a "
                f"multiple of cell_size {self.cell_size}"
            )
        if self.gamma is not None and self.gamma <= 0:
            raise ParameterError(f"gamma must be positive, got {self.gamma}")
        if self.epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {self.epsilon}")
        if self.l2_hys_clip <= 0:
            raise ParameterError(
                f"l2_hys_clip must be positive, got {self.l2_hys_clip}"
            )
        cw, ch = self.cells_per_window
        if cw < self.block_size or ch < self.block_size:
            raise ParameterError(
                "detection window is smaller than a single block"
            )

    # -- Derived geometry ------------------------------------------------

    @property
    def cells_per_window(self) -> tuple[int, int]:
        """``(cells_x, cells_y)`` in a detection window (paper: 8, 16)."""
        return (
            self.window_width // self.cell_size,
            self.window_height // self.cell_size,
        )

    @property
    def blocks_per_window(self) -> tuple[int, int]:
        """``(blocks_x, blocks_y)`` in a detection window (paper: 7, 15)."""
        cx, cy = self.cells_per_window
        return (
            (cx - self.block_size) // self.block_stride + 1,
            (cy - self.block_size) // self.block_stride + 1,
        )

    @property
    def block_dim(self) -> int:
        """Feature count per block (paper: 2*2*9 = 36)."""
        return self.block_size * self.block_size * self.n_bins

    @property
    def descriptor_length(self) -> int:
        """Window descriptor length (paper layout: 7*15*36 = 3780)."""
        bx, by = self.blocks_per_window
        return bx * by * self.block_dim

    @property
    def orientation_span(self) -> float:
        """Angular span covered by the bins (pi unsigned, 2*pi signed)."""
        import math

        return 2.0 * math.pi if self.signed_gradients else math.pi

    def cell_grid_shape(self, image_height: int, image_width: int) -> tuple[int, int]:
        """``(cell_rows, cell_cols)`` for an image; partial cells truncate."""
        return image_height // self.cell_size, image_width // self.cell_size

    def block_grid_shape(self, cell_rows: int, cell_cols: int) -> tuple[int, int]:
        """``(block_rows, block_cols)`` for a cell grid."""
        if cell_rows < self.block_size or cell_cols < self.block_size:
            return 0, 0
        return (
            (cell_rows - self.block_size) // self.block_stride + 1,
            (cell_cols - self.block_size) // self.block_stride + 1,
        )
