"""Histogram of Oriented Gradients (HOG) feature extraction.

Implements the Dalal-Triggs HOG descriptor the paper builds on (Section
3.1) and — the paper's core algorithmic contribution — *HOG feature
scaling* (Section 4): down-sampling the normalized feature grid so that
multi-scale detection needs only one histogram-generation pass.

Typical usage::

    from repro.hog import HogParameters, HogExtractor

    params = HogParameters()           # 8x8 cells, 2x2 blocks, 9 bins
    extractor = HogExtractor(params)
    grid = extractor.extract(image)    # HogFeatureGrid for a full image
    desc = grid.window_descriptor(0, 0)  # 3780-dim window descriptor
"""

from repro.hog.parameters import HogParameters, BlockNormalization
from repro.hog.histogram import cell_histograms
from repro.hog.normalize import normalize_blocks, normalize_vector
from repro.hog.extractor import (
    HogExtractor,
    HogFeatureGrid,
    window_descriptor_matrix,
)
from repro.hog.scaling import (
    scale_feature_grid,
    scale_to_cells,
    FeatureScaler,
)
from repro.hog.pyramid import (
    ImagePyramid,
    FeaturePyramid,
    pyramid_scales,
)
from repro.hog.fast_pyramid import FastFeaturePyramid, estimate_power_law

__all__ = [
    "HogParameters",
    "BlockNormalization",
    "cell_histograms",
    "normalize_blocks",
    "normalize_vector",
    "HogExtractor",
    "HogFeatureGrid",
    "window_descriptor_matrix",
    "scale_feature_grid",
    "scale_to_cells",
    "FeatureScaler",
    "ImagePyramid",
    "FeaturePyramid",
    "pyramid_scales",
    "FastFeaturePyramid",
    "estimate_power_law",
]
