"""Collect files, parse them, run the rules, gather findings."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.base import (
    Finding,
    ModuleContext,
    PragmaIndex,
    ProjectContext,
    Rule,
    get_rules,
)

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    ".mypy_cache", ".ruff_cache", ".pytest_cache",
})

#: Per-directory rule subsets: the first path component of a module's
#: root-relative display path maps to the rules *excluded* there.
#: Directories not listed run every rule (the ``src/`` posture).
#:
#: ``tests/`` opt-outs: tests legitimately draw unseeded randomness
#: (hypothesis owns their determinism), record throwaway telemetry
#: names against scratch registries, and exercise contract-violating
#: shapes on purpose.  The flow/concurrency rules *do* run there — a
#: test that blocks the loop or steals a segment is as broken as
#: production code.  ``benchmarks/`` additionally keeps
#: ``unseeded-randomness`` off per the same src-only policy even
#: though current benchmarks are fully seeded.
RULE_COVERAGE: dict[str, frozenset[str]] = {
    "src": frozenset(),
    "tests": frozenset({
        "unseeded-randomness",
        "telemetry-names",
        "telemetry-ownership",
        "ndarray-boundary-contract",
    }),
    "benchmarks": frozenset({
        "unseeded-randomness",
        "telemetry-names",
        "telemetry-ownership",
    }),
}


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p for p in path.rglob("*.py")
                if not _SKIP_DIRS & set(p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _display_path(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def load_module(path: Path, root: Path) -> "ModuleContext | Finding":
    """Parse one file; a synthetic finding when it cannot be parsed."""
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            path=display, line=1, col=1, rule="parse-error",
            message=f"could not read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=display, line=exc.lineno or 1,
            col=(exc.offset or 1), rule="parse-error",
            message=f"syntax error: {exc.msg}",
        )
    return ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        pragmas=PragmaIndex.from_source(source),
    )


def _excluded_rules(display_path: str) -> frozenset[str]:
    head = Path(display_path).parts[:1]
    if not head:
        return frozenset()
    return RULE_COVERAGE.get(head[0], frozenset())


def _check_one(
    rules: Sequence[Rule], loaded: ModuleContext
) -> list[Finding]:
    """Per-module rule pass, honoring pragmas and the coverage table."""
    excluded = _excluded_rules(loaded.display_path)
    findings: list[Finding] = []
    for rule in rules:
        if rule.name in excluded:
            continue
        for finding in rule.check_module(loaded):
            if loaded.pragmas.suppresses(finding.rule, finding.line):
                continue
            findings.append(finding)
    return findings


#: Set by the pool initializer in each --jobs worker process.
_WORKER_STATE: "dict[str, object]" = {}


def _worker_init(rule_names: "list[str] | None", root: str) -> None:
    # Under spawn start methods the registry is empty until the rules
    # package import runs its registration side effect.
    import repro.analysis  # noqa: F401

    _WORKER_STATE["rules"] = get_rules(rule_names)
    _WORKER_STATE["root"] = Path(root)


def _worker_lint(path_str: str) -> list[Finding]:
    rules = _WORKER_STATE["rules"]
    root = _WORKER_STATE["root"]
    assert isinstance(rules, tuple) and isinstance(root, Path)
    loaded = load_module(Path(path_str), root)
    if isinstance(loaded, Finding):
        return [loaded]
    return _check_one(rules, loaded)


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: "Sequence[Rule] | None" = None,
    rule_names: "Sequence[str] | None" = None,
    root: "Path | None" = None,
    jobs: int = 1,
) -> list[Finding]:
    """Run the selected rules over ``paths`` and return sorted findings.

    ``root`` anchors display paths and project-level checks (the
    telemetry docs table is looked up at ``root/docs/TELEMETRY.md``);
    it defaults to the current working directory, which is the repo
    root for every documented invocation.

    Per-module findings honor ``# repro-lint: disable=...`` pragmas and
    the :data:`RULE_COVERAGE` table (which applies even to explicitly
    selected rules — ``--rules unseeded-randomness tests/`` reports
    nothing, by design); project-level findings (cross-file invariants)
    and parse errors honor neither, since they have no meaningful
    source line to carry a pragma.

    ``jobs > 1`` fans the per-file pass out over that many worker
    processes (rules re-instantiate per worker from ``rule_names`` or
    the full registry).  Project-level checks then run in the parent
    with an *empty* ``modules`` tuple — fine for every built-in rule
    (the only project check reads ``docs/TELEMETRY.md`` from ``root``),
    and documented in docs/ANALYSIS.md for future cross-file rules.
    """
    if rules is not None and rule_names is not None:
        raise ValueError("pass rules or rule_names, not both")
    if rule_names is not None:
        rule_objs = get_rules(rule_names)
    else:
        rule_objs = tuple(rules) if rules is not None else get_rules()
    lint_root = (root or Path.cwd()).resolve()
    files = iter_python_files(paths)
    findings: list[Finding] = []
    modules: list[ModuleContext] = []

    if jobs > 1 and len(files) > 1:
        import multiprocessing

        names = (
            list(rule_names) if rule_names is not None
            else [rule.name for rule in rule_objs]
        )
        context = multiprocessing.get_context()
        with context.Pool(
            processes=min(jobs, len(files)),
            initializer=_worker_init,
            initargs=(names, str(lint_root)),
        ) as pool:
            for batch in pool.map(
                _worker_lint, [str(path) for path in files]
            ):
                findings.extend(batch)
    else:
        for path in files:
            loaded = load_module(path, lint_root)
            if isinstance(loaded, Finding):
                findings.append(loaded)
                continue
            modules.append(loaded)
            findings.extend(_check_one(rule_objs, loaded))

    project = ProjectContext(root=lint_root, modules=tuple(modules))
    for rule in rule_objs:
        findings.extend(rule.check_project(project))
    return sorted(findings)
