"""Collect files, parse them, run the rules, gather findings."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.base import (
    Finding,
    ModuleContext,
    PragmaIndex,
    ProjectContext,
    Rule,
    get_rules,
)

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    ".mypy_cache", ".ruff_cache", ".pytest_cache",
})


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p for p in path.rglob("*.py")
                if not _SKIP_DIRS & set(p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _display_path(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def load_module(path: Path, root: Path) -> "ModuleContext | Finding":
    """Parse one file; a synthetic finding when it cannot be parsed."""
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            path=display, line=1, col=1, rule="parse-error",
            message=f"could not read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=display, line=exc.lineno or 1,
            col=(exc.offset or 1), rule="parse-error",
            message=f"syntax error: {exc.msg}",
        )
    return ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        pragmas=PragmaIndex.from_source(source),
    )


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: "Sequence[Rule] | None" = None,
    root: "Path | None" = None,
) -> list[Finding]:
    """Run the selected rules over ``paths`` and return sorted findings.

    ``root`` anchors display paths and project-level checks (the
    telemetry docs table is looked up at ``root/docs/TELEMETRY.md``);
    it defaults to the current working directory, which is the repo
    root for every documented invocation.

    Per-module findings honor ``# repro-lint: disable=...`` pragmas;
    project-level findings (cross-file invariants) and parse errors do
    not, since they have no meaningful source line to carry a pragma.
    """
    rule_objs = tuple(rules) if rules is not None else get_rules()
    lint_root = (root or Path.cwd()).resolve()
    findings: list[Finding] = []
    modules: list[ModuleContext] = []
    for path in iter_python_files(paths):
        loaded = load_module(path, lint_root)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        modules.append(loaded)
        for rule in rule_objs:
            for finding in rule.check_module(loaded):
                if loaded.pragmas.suppresses(finding.rule, finding.line):
                    continue
                findings.append(finding)
    project = ProjectContext(root=lint_root, modules=tuple(modules))
    for rule in rule_objs:
        findings.extend(rule.check_project(project))
    return sorted(findings)
