"""Intraprocedural control-flow graphs and forward dataflow over ``ast``.

The flow-aware rules (``async-blocking-call``, ``lock-held-across-await``,
``shm-lifecycle``, ``arena-loan-escape``) need more than a per-node
visitor: they ask *path* questions ("can execution reach the function
exit without passing ``close()``?") and *state* questions ("is this name
bound to a borrowed slab view here?").  This module supplies both on top
of the stdlib ``ast``, with no third-party dependency, matching the
rest of :mod:`repro.analysis`.

Model
-----
One :class:`CFGNode` per statement, plus synthetic nodes: ``entry`` /
``exit``, one ``except@<line>`` per handler, one ``finally@<line>`` per
``finally`` suite and one ``loopexit@<line>`` per loop.  Edges carry a
kind — :data:`NORMAL` for ordinary control transfer and
:data:`EXCEPTION` for "this statement raised".  The graph is
deliberately conservative:

* Every statement that could plausibly raise gets an exception edge to
  the innermost handler/finally landing (or the function exit).  Only
  statements that *cannot* raise (``pass``, ``break``, ``continue``,
  ``global``, ``nonlocal``) are exempt.
* ``return`` / ``break`` / ``continue`` are routed through every
  enclosing ``finally`` suite between the statement and its target.
  Each ``finally`` suite is modelled once — abrupt exits with different
  targets share its nodes and fan out from its tail — so paths through
  a ``finally`` over-approximate the exact continuation pairing.
* Nested function and class definitions are single statements (the
  definition executes; the body belongs to another scope — build a
  separate CFG for it).

Both over-approximations err toward *more* paths, which is the safe
direction for every client rule: reachability-based rules may flag a
call on an infeasible path (rare, suppressible with a pragma) and
must-reach rules (``shm-lifecycle``) may demand cleanup on an
infeasible path (which ``finally`` satisfies anyway).

Node labels (``Assign@12``) exist for tests and debugging; identity is
the integer node index.  Statements sharing a type and line (``a = 1;
b = 2``) share a label but never an index.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Collection, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

#: Edge kind: ordinary control transfer.
NORMAL = "normal"
#: Edge kind: the source statement raised an exception.
EXCEPTION = "exception"

#: Statement types that cannot raise at runtime (no expression is
#: evaluated); everything else gets a conservative exception edge.
_NO_RAISE: tuple[type[ast.stmt], ...] = (
    ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal,
)


@dataclass(frozen=True)
class CFGNode:
    """One vertex of the graph: a statement or a synthetic landing."""

    index: int
    label: str
    #: The underlying statement (or ``ast.ExceptHandler``); None for
    #: synthetic nodes (entry/exit/finally/loopexit).
    stmt: ast.AST | None = None


class CFG:
    """A built control-flow graph; query-only once the builder returns."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry: int = -1
        self.exit: int = -1
        self._succ: dict[int, list[tuple[int, str]]] = {}
        self._by_stmt: dict[int, int] = {}

    # -- construction (used by the builder) ------------------------------

    def add_node(self, label: str, stmt: ast.AST | None = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, label=label, stmt=stmt))
        self._succ[index] = []
        if stmt is not None:
            self._by_stmt[id(stmt)] = index
        return index

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self._succ[src]:
            self._succ[src].append((dst, kind))

    # -- queries ---------------------------------------------------------

    def successors(
        self, index: int, kinds: Collection[str] | None = None
    ) -> tuple[int, ...]:
        return tuple(
            dst for dst, kind in self._succ[index]
            if kinds is None or kind in kinds
        )

    def node_for(self, stmt: ast.AST) -> int | None:
        """The node built for ``stmt``, or None if it is not in this
        graph (e.g. it belongs to a nested function scope)."""
        return self._by_stmt.get(id(stmt))

    def edges(
        self, kinds: Collection[str] | None = None
    ) -> set[tuple[str, str, str]]:
        """``(src_label, dst_label, kind)`` triples — the test-facing
        view of the graph shape."""
        out: set[tuple[str, str, str]] = set()
        for src, targets in self._succ.items():
            for dst, kind in targets:
                if kinds is None or kind in kinds:
                    out.add(
                        (self.nodes[src].label, self.nodes[dst].label, kind)
                    )
        return out

    def reachable(
        self,
        start: int | None = None,
        kinds: Collection[str] | None = None,
    ) -> set[int]:
        """Node indices reachable from ``start`` (default: entry)."""
        origin = self.entry if start is None else start
        seen = {origin}
        queue: deque[int] = deque([origin])
        while queue:
            node = queue.popleft()
            for succ in self.successors(node, kinds):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        return seen

    def has_path(
        self,
        src: int,
        dst: int,
        *,
        avoiding: Collection[int] = (),
        kinds: Collection[str] | None = None,
    ) -> bool:
        """True if some path ``src -> dst`` passes through no node in
        ``avoiding`` (``src`` itself is exempt; ``dst`` is not)."""
        avoid = set(avoiding)
        if dst in avoid:
            return False
        seen = {src}
        queue: deque[int] = deque([src])
        while queue:
            node = queue.popleft()
            for succ in self.successors(node, kinds):
                if succ == dst:
                    return True
                if succ in seen or succ in avoid:
                    continue
                seen.add(succ)
                queue.append(succ)
        return src == dst


# -- builder -----------------------------------------------------------------


@dataclass
class _Finally:
    """One ``finally`` suite being built: abrupt exits crossing it
    register their continuation target; the builder wires the suite's
    tail to every registered target once the suite's nodes exist."""

    head: int
    continuations: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class _Loop:
    head: int
    exit: int
    #: ``len(ctx.finallies)`` at loop entry — break/continue traverse
    #: only the finallies opened inside the loop body.
    depth: int


@dataclass(frozen=True)
class _Context:
    """Where abrupt control transfers land, at the current position."""

    exc: tuple[int, ...]
    finallies: tuple[_Finally, ...]  # innermost last
    loop: _Loop | None


_TRY_TYPES: tuple[type[ast.stmt], ...] = (
    (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)
)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        cfg = self.cfg
        cfg.entry = cfg.add_node("entry")
        cfg.exit = cfg.add_node("exit")
        ctx = _Context(exc=(cfg.exit,), finallies=(), loop=None)
        frontier = self._body(body, [cfg.entry], ctx)
        for pred in frontier:
            cfg.add_edge(pred, cfg.exit)
        return cfg

    # -- plumbing --------------------------------------------------------

    def _body(
        self,
        stmts: Sequence[ast.stmt],
        preds: list[int],
        ctx: _Context,
    ) -> list[int]:
        frontier = preds
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, ctx)
        return frontier

    def _node(self, stmt: ast.AST, preds: list[int]) -> int:
        label = f"{type(stmt).__name__}@{getattr(stmt, 'lineno', 0)}"
        index = self.cfg.add_node(label, stmt)
        for pred in preds:
            self.cfg.add_edge(pred, index)
        return index

    def _exc_edges(self, index: int, ctx: _Context) -> None:
        for target in ctx.exc:
            self.cfg.add_edge(index, target, EXCEPTION)

    def _route(
        self, src: int, target: int, chain: Sequence[_Finally]
    ) -> None:
        """Send an abrupt exit from ``src`` to ``target`` through every
        ``finally`` suite in ``chain`` (stored outermost-first)."""
        hops = list(reversed(chain))  # innermost suite runs first
        if not hops:
            self.cfg.add_edge(src, target)
            return
        self.cfg.add_edge(src, hops[0].head)
        for current, nxt in zip(hops, hops[1:]):
            current.continuations.add(nxt.head)
        hops[-1].continuations.add(target)

    # -- statement dispatch ----------------------------------------------

    def _stmt(
        self, stmt: ast.stmt, preds: list[int], ctx: _Context
    ) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, preds, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds, ctx)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, preds, ctx)  # type: ignore[arg-type]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds, ctx)
        if isinstance(stmt, ast.Return):
            index = self._node(stmt, preds)
            if stmt.value is not None:
                self._exc_edges(index, ctx)
            self._route(index, self.cfg.exit, ctx.finallies)
            return []
        if isinstance(stmt, ast.Raise):
            index = self._node(stmt, preds)
            self._exc_edges(index, ctx)
            return []
        if isinstance(stmt, ast.Break):
            index = self._node(stmt, preds)
            if ctx.loop is None:  # ast.parse accepts a stray break
                self._route(index, self.cfg.exit, ctx.finallies)
            else:
                self._route(
                    index, ctx.loop.exit, ctx.finallies[ctx.loop.depth:]
                )
            return []
        if isinstance(stmt, ast.Continue):
            index = self._node(stmt, preds)
            if ctx.loop is None:
                self._route(index, self.cfg.exit, ctx.finallies)
            else:
                self._route(
                    index, ctx.loop.head, ctx.finallies[ctx.loop.depth:]
                )
            return []
        # Simple statement (including nested function/class definitions,
        # whose bodies belong to other scopes).
        index = self._node(stmt, preds)
        if not isinstance(stmt, _NO_RAISE):
            self._exc_edges(index, ctx)
        return [index]

    # -- compound statements ---------------------------------------------

    def _if(
        self, stmt: ast.If, preds: list[int], ctx: _Context
    ) -> list[int]:
        index = self._node(stmt, preds)  # the test
        self._exc_edges(index, ctx)
        frontier = self._body(stmt.body, [index], ctx)
        if stmt.orelse:
            frontier += self._body(stmt.orelse, [index], ctx)
        else:
            frontier += [index]
        return frontier

    def _while(
        self, stmt: ast.While, preds: list[int], ctx: _Context
    ) -> list[int]:
        cfg = self.cfg
        index = self._node(stmt, preds)  # the test
        self._exc_edges(index, ctx)
        loop_exit = cfg.add_node(f"loopexit@{stmt.lineno}")
        loop_ctx = replace(
            ctx,
            loop=_Loop(
                head=index, exit=loop_exit, depth=len(ctx.finallies)
            ),
        )
        for pred in self._body(stmt.body, [index], loop_ctx):
            cfg.add_edge(pred, index)  # back edge
        infinite = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        if stmt.orelse:
            else_preds = [] if infinite else [index]
            for pred in self._body(stmt.orelse, else_preds, ctx):
                cfg.add_edge(pred, loop_exit)
        elif not infinite:
            cfg.add_edge(index, loop_exit)
        return [loop_exit]

    def _for(
        self, stmt: ast.For | ast.AsyncFor, preds: list[int], ctx: _Context
    ) -> list[int]:
        cfg = self.cfg
        index = self._node(stmt, preds)  # iterator advance + target bind
        self._exc_edges(index, ctx)
        loop_exit = cfg.add_node(f"loopexit@{stmt.lineno}")
        loop_ctx = replace(
            ctx,
            loop=_Loop(
                head=index, exit=loop_exit, depth=len(ctx.finallies)
            ),
        )
        for pred in self._body(stmt.body, [index], loop_ctx):
            cfg.add_edge(pred, index)  # back edge
        if stmt.orelse:
            for pred in self._body(stmt.orelse, [index], ctx):
                cfg.add_edge(pred, loop_exit)
        else:
            cfg.add_edge(index, loop_exit)
        return [loop_exit]

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        preds: list[int],
        ctx: _Context,
    ) -> list[int]:
        index = self._node(stmt, preds)  # context-manager entry
        self._exc_edges(index, ctx)
        return self._body(stmt.body, [index], ctx)

    def _match(
        self, stmt: ast.Match, preds: list[int], ctx: _Context
    ) -> list[int]:
        index = self._node(stmt, preds)  # subject evaluation
        self._exc_edges(index, ctx)
        frontier = [index]  # no case matched
        for case in stmt.cases:
            frontier += self._body(case.body, [index], ctx)
        return frontier

    def _try(
        self, stmt: ast.Try, preds: list[int], ctx: _Context
    ) -> list[int]:
        cfg = self.cfg
        index = self._node(stmt, preds)
        fin: _Finally | None = None
        if stmt.finalbody:
            head = cfg.add_node(f"finally@{stmt.finalbody[0].lineno}")
            fin = _Finally(head=head)
        inner_exc = (fin.head,) if fin is not None else ctx.exc
        inner_fin = (
            ctx.finallies + (fin,) if fin is not None else ctx.finallies
        )

        handler_nodes = [
            cfg.add_node(f"except@{handler.lineno}", handler)
            for handler in stmt.handlers
        ]
        # Body exceptions may match any handler, or none (fall through).
        body_ctx = replace(
            ctx,
            exc=tuple(handler_nodes) + inner_exc,
            finallies=inner_fin,
        )
        body_frontier = self._body(stmt.body, [index], body_ctx)

        # ``else`` and handler bodies raise past the handlers.
        after_ctx = replace(ctx, exc=inner_exc, finallies=inner_fin)
        if stmt.orelse:
            complete = self._body(stmt.orelse, body_frontier, after_ctx)
        else:
            complete = list(body_frontier)
        for handler, handler_node in zip(stmt.handlers, handler_nodes):
            complete += self._body(handler.body, [handler_node], after_ctx)

        if fin is None:
            return complete
        for pred in complete:
            cfg.add_edge(pred, fin.head)
        # The finally suite itself runs under the *outer* context: its
        # own abrupt exits traverse outer finallies only.
        fb_frontier = self._body(stmt.finalbody, [fin.head], ctx)
        for target in sorted(fin.continuations):
            for pred in fb_frontier:
                cfg.add_edge(pred, target)
        # Entered on an exception, the suite re-raises at its tail.
        for target in ctx.exc:
            for pred in fb_frontier:
                cfg.add_edge(pred, target, EXCEPTION)
        # Fall through to the next statement only if some non-abrupt
        # path completes the try (otherwise the tail only serves the
        # registered continuations above).
        return fb_frontier if complete else []


def build_cfg(
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
) -> CFG:
    """Build the CFG of one scope's body (module or function).

    Nested function/class definitions are single nodes; build their
    CFGs separately from their own ``body``.
    """
    return _Builder().build(scope.body)


# -- forward dataflow --------------------------------------------------------


class ForwardAnalysis:
    """Subclass hook for :func:`run_forward`.

    States must support ``==`` and must form a finite-height lattice
    under :meth:`join` (the worklist otherwise hits the iteration cap
    and the analysis degrades to its partial result — conservative for
    every current client, which only *reads* what a state proves).
    """

    #: Edge kinds propagated along; None means all kinds.
    edge_kinds: ClassVar[tuple[str, ...] | None] = None

    def initial(self) -> Any:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: Any) -> Any:
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        raise NotImplementedError


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, Any]:
    """Worklist fixpoint; returns the in-state of every visited node."""
    in_states: dict[int, Any] = {cfg.entry: analysis.initial()}
    worklist: deque[int] = deque([cfg.entry])
    budget = max(1, len(cfg.nodes)) * 200
    while worklist and budget > 0:
        budget -= 1
        index = worklist.popleft()
        out_state = analysis.transfer(cfg.nodes[index], in_states[index])
        for succ in cfg.successors(index, analysis.edge_kinds):
            if succ in in_states:
                merged = analysis.join(in_states[succ], out_state)
                if merged == in_states[succ]:
                    continue
                in_states[succ] = merged
            else:
                in_states[succ] = out_state
            worklist.append(succ)
    return in_states


# -- shared scope helpers ----------------------------------------------------


def iter_stmt_expressions(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expression roots evaluated *by this statement's CFG node*.

    For compound statements that is the header only (`if`/`while`
    tests, `for` iterables, `with` context managers) — their body
    statements have CFG nodes of their own.  Function and class
    definitions contribute nothing (their bodies are other scopes).
    """
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child
        elif isinstance(child, ast.withitem):
            yield child.context_expr
            if child.optional_vars is not None:
                yield child.optional_vars


def iter_expr_calls(expr: ast.expr) -> Iterator[ast.Call]:
    """Every call inside ``expr``, not descending into lambdas."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def scope_statements(
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a scope without entering nested function/class scopes.

    Unlike :func:`repro.analysis.base.scope_nodes` this also stops at
    class bodies (a class statement executes its body, but flow rules
    treat methods via their own scopes) and at lambdas.
    """
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        if node is not scope and isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
             ast.ClassDef),
        ):
            yield node  # the definition itself, not its body
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
