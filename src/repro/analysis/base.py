"""Core types of the project linter: findings, pragmas, rules, registry.

The linter is deliberately stdlib-only (``ast`` + ``re``): it has to run
in CI before any third-party dependency is guaranteed importable, and it
must never perturb the code it analyses.  Rules are small classes
registered into a module-level registry; adding one is documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.errors import ParameterError

#: Inline pragma grammar: ``# repro-lint: disable=rule-a,rule-b``
#: suppresses the listed rules for findings on that physical line;
#: ``disable-file=`` suppresses them for the whole module.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint diagnostic, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"


@dataclass(frozen=True)
class PragmaIndex:
    """Per-module view of ``# repro-lint:`` suppression comments."""

    file_disabled: frozenset[str]
    line_disabled: dict[int, frozenset[str]]

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        file_disabled: set[str] = set()
        line_disabled: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = frozenset(
                name.strip() for name in match.group("rules").split(",")
            )
            if match.group("scope") == "disable-file":
                file_disabled.update(rules)
            else:
                line_disabled[lineno] = (
                    line_disabled.get(lineno, frozenset()) | rules
                )
        return cls(
            file_disabled=frozenset(file_disabled),
            line_disabled=line_disabled,
        )

    def suppresses(self, rule: str, line: int) -> bool:
        if rule in self.file_disabled:
            return True
        return rule in self.line_disabled.get(line, frozenset())


@dataclass(frozen=True)
class ModuleContext:
    """One parsed source file handed to every rule."""

    path: Path
    #: Repo-relative (or as-given) display path used in findings.
    display_path: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex


@dataclass(frozen=True)
class ProjectContext:
    """The whole lint invocation, for project-level (cross-file) checks."""

    root: Path
    modules: tuple[ModuleContext, ...] = field(default_factory=tuple)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` / :attr:`description` and override
    :meth:`check_module` (per-file AST pass) and/or
    :meth:`check_project` (one call per lint invocation, after every
    module has been scanned — for cross-file invariants such as the
    telemetry docs table).  Register with :func:`register`.
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        module: ModuleContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``module``."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ParameterError(f"rule {cls.__name__} has an empty name")
    if cls.name in _REGISTRY:
        raise ParameterError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rule_classes() -> tuple[type[Rule], ...]:
    """Every registered rule class, sorted by rule name."""
    return tuple(
        _REGISTRY[name] for name in sorted(_REGISTRY)
    )


def get_rules(names: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Instantiate the selected rules (all of them when ``names`` is None)."""
    if names is None:
        return tuple(cls() for cls in all_rule_classes())
    rules = []
    for name in names:
        cls = _REGISTRY.get(name)
        if cls is None:
            known = ", ".join(sorted(_REGISTRY))
            raise ParameterError(
                f"unknown lint rule {name!r}; known rules: {known}"
            )
        rules.append(cls())
    return tuple(rules)


# -- Shared AST helpers ------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last path component of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map names bound by imports to what they qualify to.

    ``import queue`` -> ``{"queue": "queue"}``; ``import numpy as np``
    -> ``{"np": "numpy"}``; ``from queue import Queue as Q`` ->
    ``{"Q": "queue.Queue"}``.  Relative imports are left unmapped (the
    bare name stays, and rules matching on terminal names still work).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mapping[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def qualify(dotted: str, imports: dict[str, str]) -> str:
    """Resolve the head of ``a.b.c`` through :func:`import_map`."""
    head, sep, rest = dotted.partition(".")
    mapped = imports.get(head)
    if mapped is None:
        return dotted
    return f"{mapped}{sep}{rest}" if rest else mapped


def scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Class bodies *are* descended (methods then appear as separate
    scopes via :func:`iter_scopes`); lambdas are treated as part of the
    enclosing scope since they cannot contain statements.
    """
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        if node is not scope and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
