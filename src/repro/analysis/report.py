"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.base import Finding, Rule

#: Schema version of the JSON report; bump on breaking layout changes.
JSON_REPORT_VERSION = 1


def render_text_report(
    findings: Sequence[Finding],
    *,
    checked_files: int,
) -> str:
    """Human-readable report: one ``path:line:col: rule: message`` per
    finding, then a one-line summary."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    files = "file" if checked_files == 1 else "files"
    lines.append(
        f"{len(findings)} {noun} in {checked_files} {files} checked"
    )
    return "\n".join(lines)


def render_json_report(
    findings: Sequence[Finding],
    *,
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    """Machine-readable report (stable schema, see docs/ANALYSIS.md)."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "rules": [rule.name for rule in rules],
        "checked_files": checked_files,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
