"""Project-invariant static analysis (the ``repro-das lint`` linter).

A small, stdlib-only AST linter enforcing invariants this repo has been
bitten by before: canonical telemetry names (+ docs-table sync),
telemetry-sink ownership, seeded randomness, and ndarray contracts at
stage boundaries.  See ``docs/ANALYSIS.md`` for the rule catalogue,
pragma syntax and how to add a rule.

Typical entry points::

    repro-das lint src                 # CLI (exit 1 on findings)
    lint_paths([Path("src")])          # library

Importing this package pulls in :mod:`repro.analysis.rules`, which
registers the built-in rules as a side effect.
"""

from __future__ import annotations

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.base import (
    Finding,
    ModuleContext,
    PragmaIndex,
    ProjectContext,
    Rule,
    all_rule_classes,
    get_rules,
    register,
)
from repro.analysis.report import (
    JSON_REPORT_VERSION,
    render_json_report,
    render_text_report,
)
from repro.analysis.runner import iter_python_files, lint_paths

__all__ = [
    "Finding",
    "JSON_REPORT_VERSION",
    "ModuleContext",
    "PragmaIndex",
    "ProjectContext",
    "Rule",
    "all_rule_classes",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "register",
    "render_json_report",
    "render_text_report",
]
