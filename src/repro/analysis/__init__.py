"""Project-invariant static analysis (the ``repro-das lint`` linter).

A small, stdlib-only AST linter enforcing invariants this repo has been
bitten by before: canonical telemetry names (+ docs-table sync),
telemetry-sink ownership, seeded randomness, ndarray contracts at
stage boundaries, and — via the :mod:`repro.analysis.flow` CFG/dataflow
engine — the concurrency contracts of the serving stack (no blocking
calls on the event loop, no awaits under sync locks, loop-affine
telemetry, SharedMemory lifecycle, arena-loan escape).  See
``docs/ANALYSIS.md`` for the rule catalogue, pragma syntax and how to
add a rule.

Typical entry points::

    repro-das lint src tests benchmarks      # CLI (exit 1 on findings)
    lint_paths([Path("src")], jobs=4)        # library

Importing this package pulls in :mod:`repro.analysis.rules`, which
registers the built-in rules as a side effect.
"""

from __future__ import annotations

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.base import (
    Finding,
    ModuleContext,
    PragmaIndex,
    ProjectContext,
    Rule,
    all_rule_classes,
    get_rules,
    import_map,
    qualify,
    register,
)
from repro.analysis.flow import (
    CFG,
    EXCEPTION,
    NORMAL,
    CFGNode,
    ForwardAnalysis,
    build_cfg,
    run_forward,
)
from repro.analysis.report import (
    JSON_REPORT_VERSION,
    render_json_report,
    render_text_report,
)
from repro.analysis.runner import (
    RULE_COVERAGE,
    iter_python_files,
    lint_paths,
)
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    render_sarif_report,
)

__all__ = [
    "CFG",
    "CFGNode",
    "EXCEPTION",
    "Finding",
    "ForwardAnalysis",
    "JSON_REPORT_VERSION",
    "ModuleContext",
    "NORMAL",
    "PragmaIndex",
    "ProjectContext",
    "RULE_COVERAGE",
    "Rule",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "all_rule_classes",
    "build_cfg",
    "get_rules",
    "import_map",
    "iter_python_files",
    "lint_paths",
    "qualify",
    "register",
    "render_json_report",
    "render_sarif_report",
    "render_text_report",
    "run_forward",
]
