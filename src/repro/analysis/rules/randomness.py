"""``unseeded-randomness``: protect synthetic-dataset determinism.

The reproduction's training data, benchmarks and regression baselines
are all synthesized; they are only comparable across runs because every
random draw flows from an explicitly seeded ``np.random.Generator``.
This rule forbids, outside ``tests/``:

* legacy module-level RNG calls — ``np.random.rand(...)``,
  ``np.random.seed(...)``, etc. — which mutate or read hidden global
  state, and
* argument-less ``default_rng()``, which is seeded from the OS and
  therefore nondeterministic.

Constructing generators and seed machinery (``default_rng(seed)``,
``SeedSequence``, bit generators) is allowed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    register,
)

#: ``np.random`` attributes that are fine to call: generator/seed
#: construction rather than hidden-global-state draws.
ALLOWED_NP_RANDOM = frozenset({
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
})

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


@register
class UnseededRandomnessRule(Rule):
    name = "unseeded-randomness"
    description = (
        "forbid legacy np.random.* module-level calls and argument-less "
        "default_rng() outside tests/ (synthetic data must be seeded)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        # tests/ and benchmarks/ are exempted by RULE_COVERAGE in the
        # runner, not here — the policy lives in one table.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            attr: str | None = None
            for prefix in _NP_RANDOM_PREFIXES:
                if dotted.startswith(prefix):
                    attr = dotted[len(prefix):]
                    break
            if attr is not None and "." not in attr:
                if attr not in ALLOWED_NP_RANDOM:
                    yield self.finding(
                        module,
                        node,
                        f"legacy global-state RNG call np.random."
                        f"{attr}(); draw from an explicitly seeded "
                        f"np.random.default_rng(seed) instead",
                    )
                    continue
            is_default_rng = dotted == "default_rng" or dotted.endswith(
                ".default_rng"
            )
            if is_default_rng and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "argument-less default_rng() seeds from the OS and "
                    "is nondeterministic; pass an explicit seed (or a "
                    "SeedSequence)",
                )
