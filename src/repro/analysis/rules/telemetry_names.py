"""``telemetry-names``: record-site literals must exist in the registry.

Every name handed to a telemetry record method (``inc`` / ``set_gauge``
/ ``observe`` / ``span`` / ``timer``) as a string or f-string literal
must resolve to an entry of :data:`repro.telemetry.names.NAMES`, with
the matching kind.  F-string interpolations are normalized to the
``<>`` placeholder, so ``f"detect.scale[{s:.2f}].windows_scanned"``
matches the registered template ``detect.scale[<s>].windows_scanned``.
Partial literals such as ``f"{label}.windows_scanned"`` cannot resolve
— write the full name at the record site so it is greppable and
checkable.

As a project-level pass the rule also verifies that the generated name
table in ``docs/TELEMETRY.md`` matches the registry row for row, making
docs drift a lint failure.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.base import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    register,
)
from repro.telemetry import names as telemetry_names

#: Record method name -> the registry kind its first argument must have.
RECORD_METHODS: dict[str, str] = {
    "inc": "counter",
    "set_gauge": "gauge",
    "observe": "histogram",
    "span": "span",
    "timer": "span",
}


def _literal_templates(expr: ast.expr) -> Iterator[tuple[ast.expr, str]]:
    """Yield ``(node, template)`` for each string literal inside ``expr``.

    F-strings contribute one template with every interpolated field
    replaced by ``<>``; dynamic expressions (names, calls) contribute
    nothing — the rule only vouches for literals it can read.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        yield expr, expr.value
    elif isinstance(expr, ast.JoinedStr):
        parts = []
        for value in expr.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("<>")
        yield expr, "".join(parts)
    elif isinstance(expr, ast.BoolOp):
        for value in expr.values:
            yield from _literal_templates(value)
    elif isinstance(expr, ast.IfExp):
        yield from _literal_templates(expr.body)
        yield from _literal_templates(expr.orelse)


@register
class TelemetryNamesRule(Rule):
    name = "telemetry-names"
    description = (
        "telemetry record-site literals must resolve to the canonical "
        "registry in repro/telemetry/names.py, with the right kind; the "
        "docs/TELEMETRY.md table must match the registry exactly"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        # tests/ is exempted by RULE_COVERAGE in the runner, not here.
        if module.path.name == "names.py":
            # The registry itself mentions names in docstrings/tables.
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            kind = RECORD_METHODS.get(func.attr)
            if kind is None or not node.args:
                continue
            for literal, template in _literal_templates(node.args[0]):
                entry = telemetry_names.lookup(template)
                if entry is None:
                    yield self.finding(
                        module,
                        literal,
                        f"telemetry name {template!r} is not in the "
                        f"canonical registry "
                        f"(src/repro/telemetry/names.py); register it "
                        f"or write the full literal name at the record "
                        f"site",
                    )
                elif entry.kind != kind:
                    yield self.finding(
                        module,
                        literal,
                        f"telemetry name {template!r} is registered as "
                        f"a {entry.kind} but recorded here via "
                        f".{func.attr}() which records a {kind}",
                    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        docs = project.root / "docs" / "TELEMETRY.md"
        if not docs.is_file():
            return
        try:
            text = docs.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - unreadable docs file
            yield Finding(
                path=str(docs),
                line=1,
                col=1,
                rule=self.name,
                message=f"could not read telemetry docs: {exc}",
            )
            return
        for problem in telemetry_names.docs_table_problems(text):
            yield Finding(
                path="docs/TELEMETRY.md",
                line=1,
                col=1,
                rule=self.name,
                message=problem,
            )
