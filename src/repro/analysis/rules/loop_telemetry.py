"""``loop-thread-telemetry``: serve telemetry is event-loop-only.

docs/TELEMETRY.md's serving contract: the service registry lives on
the event-loop thread, and every ``serve.*`` record site must execute
there — worker threads cross over exactly once, via
``loop.call_soon_threadsafe`` (see ``DetectionService._deliver``).  A
thread-side ``registry.inc("serve.…")`` races the loop-side reader and
corrupts the per-frame accounting the no-silent-loss tests verify.

The rule classifies each function in a module:

* **thread-side** — passed as ``target=`` to a ``threading.Thread``
  constructor, or called directly (bare ``f()`` / ``self.m()``) from a
  thread-side function (propagated to a fixpoint, module-locally);
* **loop-side** — ``async def``, or referenced as the callback of
  ``call_soon_threadsafe`` (the sanctioned bridge — the callback runs
  on the loop no matter which thread scheduled it).

A ``serve.*`` literal recorded via ``inc`` / ``set_gauge`` / ``observe``
/ ``span`` / ``timer`` inside a thread-side *sync* function is a
finding.  Untraceable functions are never flagged — the rule
under-approximates rather than guess at dynamic dispatch.

Fix pattern: record from the ``call_soon_threadsafe`` callback, as
``_deliver`` -> ``_on_result`` does.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    terminal_name,
)
from repro.analysis.flow import scope_statements
from repro.analysis.rules.telemetry_names import RECORD_METHODS


def _serve_literal(expr: ast.expr) -> str | None:
    """The recorded name when it is a ``serve.*`` (f-)string literal."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value if expr.value.startswith("serve.") else None
    if isinstance(expr, ast.JoinedStr) and expr.values:
        first = expr.values[0]
        if isinstance(first, ast.Constant) and str(
            first.value
        ).startswith("serve."):
            return str(first.value) + "…"
    return None


def _record_sites(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.expr, str]]:
    for node in scope_statements(func):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in RECORD_METHODS or not node.args:
            continue
        name = _serve_literal(node.args[0])
        if name is not None:
            yield node.args[0], name


def _callable_ref_name(expr: ast.expr) -> str | None:
    """``f`` / ``self.m`` reference -> the local function name."""
    return terminal_name(expr)


@register
class LoopThreadTelemetryRule(Rule):
    name = "loop-thread-telemetry"
    description = (
        "serve.* telemetry record sites must run on the event loop: "
        "coroutine scope or a call_soon_threadsafe callback, never a "
        "thread-side function (docs/TELEMETRY.md serving contract)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        tree = module.tree
        funcs: dict[str, list[ast.FunctionDef | ast.AsyncFunctionDef]]
        funcs = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.setdefault(node.name, []).append(node)

        thread_side: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) != "Thread":
                continue
            for keyword in node.keywords:
                if keyword.arg == "target":
                    name = _callable_ref_name(keyword.value)
                    if name is not None and name in funcs:
                        thread_side.add(name)

        # Propagate thread-sidedness through direct module-local calls
        # (bare `f()` and `self.m()`); references passed through
        # call_soon_threadsafe are the bridge and do not propagate.
        worklist = list(thread_side)
        while worklist:
            current = worklist.pop()
            for func in funcs.get(current, ()):
                for node in scope_statements(func):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = node.func
                    name: str | None = None
                    if isinstance(callee, ast.Name):
                        name = callee.id
                    elif isinstance(callee, ast.Attribute) and isinstance(
                        callee.value, ast.Name
                    ) and callee.value.id == "self":
                        name = callee.attr
                    if (
                        name is not None
                        and name in funcs
                        and name not in thread_side
                    ):
                        thread_side.add(name)
                        worklist.append(name)

        for name in sorted(thread_side):
            for func in funcs[name]:
                if isinstance(func, ast.AsyncFunctionDef):
                    continue  # coroutine scope is loop-side by definition
                for literal_node, recorded in _record_sites(func):
                    yield self.finding(
                        module,
                        literal_node,
                        f"telemetry name {recorded!r} is recorded in "
                        f"thread-side function {name!r}; serve.* "
                        f"records must run on the event loop — bounce "
                        f"via loop.call_soon_threadsafe "
                        f"(docs/TELEMETRY.md)",
                    )
