"""``shm-lifecycle``: shared-memory segments must not leak or be stolen.

POSIX shared memory outlives the process: a ``SharedMemory(
create=True)`` whose owner never reaches ``close()`` **and**
``unlink()`` leaves a segment in ``/dev/shm`` until reboot (the leak
the parallel-smoke CI job greps for).  Conversely, an *attaching*
process calling ``unlink()`` steals the name out from under the owner
and every later attacher — the exact split ``repro.parallel.shm``
documents: the creating side owns close+unlink, workers attach and
only ever ``close()``.

Checks, per ``SharedMemory(...)`` call site:

* ``create=True`` assigned to a local: every CFG path from the
  creation to the function exit — including exception edges — must
  pass a ``close()`` *and* an ``unlink()`` on that name (i.e. cleanup
  belongs in a ``finally``).  Locals that escape (returned, passed to
  another call such as ``weakref.finalize``, stored in a container)
  transfer ownership and are skipped.
* ``create=True`` assigned to ``self.X``: the class must call
  ``self.X.close()`` and ``self.X.unlink()`` somewhere, with the
  ``unlink`` exception-protected (inside a ``finally`` suite or
  ``except`` handler), or hand cleanup to ``weakref.finalize``.
* attach-side (no ``create=True``): calling ``unlink()`` on the
  attached handle is a finding; ``close()`` alone is the correct
  worker-side teardown.

A dynamic ``create=<expr>`` makes the side undecidable and the site is
skipped.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    terminal_name,
)
from repro.analysis.flow import (
    CFG,
    NORMAL,
    build_cfg,
    iter_expr_calls,
    iter_stmt_expressions,
    scope_statements,
)


def _shm_call(node: ast.expr) -> "ast.Call | None":
    if isinstance(node, ast.Call) and terminal_name(
        node.func
    ) == "SharedMemory":
        return node
    return None


def _create_mode(call: ast.Call) -> str:
    """``"owner"`` / ``"attach"`` / ``"unknown"`` for one call."""
    for keyword in call.keywords:
        if keyword.arg == "create":
            if isinstance(keyword.value, ast.Constant):
                return "owner" if keyword.value.value else "attach"
            return "unknown"
    return "attach"


def _method_calls_on(
    scope: ast.AST, name: str, methods: frozenset[str]
) -> Iterator[ast.Call]:
    """Calls ``<name>.<method>(...)`` in ``scope`` (scope-local)."""
    for node in scope_statements(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in methods:
            continue
        if isinstance(func.value, ast.Name) and func.value.id == name:
            yield node


def _self_attr_calls(
    cls: ast.ClassDef, attr: str, method: str
) -> Iterator[ast.Call]:
    """Calls ``self.<attr>.<method>()`` anywhere in the class body."""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != method:
            continue
        receiver = func.value
        if (
            isinstance(receiver, ast.Attribute)
            and receiver.attr == attr
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            yield node


def _escapes(func: ast.AST, name: str) -> bool:
    """True when the local ``name`` leaves the frame (ownership moves)."""
    parents: dict[int, ast.AST] = {}
    for node in scope_statements(func):
        for child in ast.iter_child_nodes(node):
            parents.setdefault(id(child), node)
    for node in scope_statements(func):
        if not (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            continue
        parent = parents.get(id(node))
        if parent is None:
            continue
        if isinstance(parent, ast.Attribute):
            continue  # shm.close() / shm.buf — plain member access
        if isinstance(parent, ast.Call) and node in parent.args:
            return True  # handed to another function (finalize, …)
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(
            parent,
            (ast.Return, ast.Yield, ast.YieldFrom, ast.Tuple, ast.List,
             ast.Set, ast.Dict, ast.Starred, ast.Await),
        ):
            return True
        if isinstance(parent, (ast.Assign, ast.AnnAssign)) and (
            node is parent.value
        ):
            return True  # aliased — track neither copy
        if isinstance(parent, (ast.Subscript, ast.Attribute)) and (
            isinstance(getattr(parent, "ctx", None), ast.Store)
        ):
            return True
    return False


def _leaks(
    cfg: CFG, creation: int, avoid: set[int], cleanup: set[int]
) -> bool:
    """Can execution leave ``creation`` (it succeeded — follow normal
    edges for the first hop) and reach exit avoiding ``avoid``?

    Exception edges out of *other* cleanup calls on the same handle
    (``cleanup`` = close and unlink sites) are not followed: a failing
    ``close()`` has already aborted the teardown, and charging its
    hypothetical raise against the ``unlink()`` check would flag the
    canonical ``finally: close(); unlink()`` pattern.
    """
    if cfg.exit in avoid:
        return False
    queue: deque[int] = deque(
        succ for succ in cfg.successors(creation, kinds=(NORMAL,))
        if succ not in avoid
    )
    seen: set[int] = set()
    while queue:
        node = queue.popleft()
        if node == cfg.exit:
            return True
        if node in seen:
            continue
        seen.add(node)
        kinds = (NORMAL,) if node in cleanup else None
        for succ in cfg.successors(node, kinds):
            if succ not in avoid and succ not in seen:
                queue.append(succ)
    return False


def _protected(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    """Is ``node`` lexically inside a ``finally`` suite or handler?"""
    child: ast.AST = node
    parent = parents.get(id(child))
    while parent is not None:
        if isinstance(parent, ast.ExceptHandler):
            return True
        if isinstance(parent, ast.Try) and isinstance(child, ast.stmt):
            if child in parent.finalbody:
                return True
        child = parent
        parent = parents.get(id(child))
    return False


@register
class ShmLifecycleRule(Rule):
    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True) must reach close()+unlink() on every "
        "normal and exceptional exit path (finally / weakref.finalize); "
        "attach-side code must never unlink()"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        tree = module.tree
        class_of: dict[int, ast.ClassDef] = {}
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                for item in cls.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        class_of[id(item)] = cls

        checked_classes: set[int] = set()
        for func in ast.walk(tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._check_scope(
                module, func, class_of.get(id(func)), checked_classes
            )

    def _check_scope(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
        checked_classes: set[int],
    ) -> Iterable[Finding]:
        cfg: CFG | None = None
        for stmt in scope_statements(func):
            if not isinstance(stmt, (ast.Assign, ast.Expr)):
                continue
            call = _shm_call(stmt.value)
            if call is None:
                continue
            mode = _create_mode(call)
            if mode == "unknown":
                continue
            target: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            if mode == "owner":
                if target is None:
                    yield self.finding(
                        module,
                        call,
                        "SharedMemory(create=True) result is discarded "
                        "— the segment can never be closed or unlinked",
                    )
                    continue
                if isinstance(target, ast.Name):
                    if cfg is None:
                        cfg = build_cfg(func)
                    yield from self._check_local_owner(
                        module, func, cfg, stmt, call, target.id
                    )
                else:
                    attr = self._self_attr(target)
                    if attr is not None and cls is not None:
                        yield from self._check_class_owner(
                            module, cls, call, attr, checked_classes
                        )
            else:  # attach side
                name = target.id if isinstance(target, ast.Name) else None
                if name is not None:
                    for unlink in _method_calls_on(
                        func, name, frozenset({"unlink"})
                    ):
                        yield self.finding(
                            module,
                            unlink,
                            f"attach-side unlink() of {name!r}: only "
                            f"the creating owner may unlink a segment "
                            f"(workers close() and leave the name "
                            f"alone)",
                        )
                attr = (
                    self._self_attr(target) if target is not None else None
                )
                if attr is not None and cls is not None:
                    for unlink in _self_attr_calls(cls, attr, "unlink"):
                        yield self.finding(
                            module,
                            unlink,
                            f"attach-side unlink() of self.{attr}: only "
                            f"the creating owner may unlink a segment",
                        )

    @staticmethod
    def _self_attr(target: ast.expr) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _check_local_owner(
        self,
        module: ModuleContext,
        func: ast.AST,
        cfg: CFG,
        stmt: ast.stmt,
        call: ast.Call,
        name: str,
    ) -> Iterable[Finding]:
        if _escapes(func, name):
            return
        creation = cfg.node_for(stmt)
        if creation is None:
            return
        cleanup_nodes: dict[str, set[int]] = {
            "close": set(), "unlink": set(),
        }
        for method, nodes in cleanup_nodes.items():
            for other in scope_statements(func):
                if not isinstance(other, ast.stmt):
                    continue
                index = cfg.node_for(other)
                if index is None:
                    continue
                for expr in iter_stmt_expressions(other):
                    for inner in iter_expr_calls(expr):
                        inner_func = inner.func
                        if (
                            isinstance(inner_func, ast.Attribute)
                            and inner_func.attr == method
                            and isinstance(inner_func.value, ast.Name)
                            and inner_func.value.id == name
                        ):
                            nodes.add(index)
        all_cleanup = cleanup_nodes["close"] | cleanup_nodes["unlink"]
        if _leaks(cfg, creation, cleanup_nodes["close"], all_cleanup):
            yield self.finding(
                module,
                call,
                f"a path exits this scope without {name}.close(); put "
                f"cleanup in a finally so exceptional exits release "
                f"the mapping too",
            )
        if _leaks(cfg, creation, cleanup_nodes["unlink"], all_cleanup):
            yield self.finding(
                module,
                call,
                f"a path exits this scope without {name}.unlink(); the "
                f"segment would outlive the process — unlink in a "
                f"finally (or hand off via weakref.finalize)",
            )

    def _check_class_owner(
        self,
        module: ModuleContext,
        cls: ast.ClassDef,
        call: ast.Call,
        attr: str,
        checked_classes: set[int],
    ) -> Iterable[Finding]:
        key = id(cls) ^ hash(attr)
        if key in checked_classes:
            return
        checked_classes.add(key)
        uses_finalize = any(
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "finalize"
            for node in ast.walk(cls)
        )
        if uses_finalize:
            return  # cleanup handed to weakref.finalize
        closes = list(_self_attr_calls(cls, attr, "close"))
        unlinks = list(_self_attr_calls(cls, attr, "unlink"))
        if not closes or not unlinks:
            missing = " and ".join(
                part for part, present in (
                    ("close()", closes), ("unlink()", unlinks)
                ) if not present
            )
            yield self.finding(
                module,
                call,
                f"self.{attr} owns a SharedMemory segment but the "
                f"class never calls {missing} on it — owners must "
                f"close() and unlink() (see repro.parallel.shm)",
            )
            return
        parents: dict[int, ast.AST] = {}
        for node in ast.walk(cls):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(id(child), node)
        if not any(_protected(u, parents) for u in unlinks):
            yield self.finding(
                module,
                call,
                f"self.{attr}.unlink() is not exception-protected: an "
                f"error before it leaks the segment — run it from a "
                f"finally suite (or register weakref.finalize)",
            )
