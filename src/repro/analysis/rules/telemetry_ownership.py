"""``telemetry-ownership``: only set ``.telemetry`` on objects you made.

PR 2 fixed a bug where a detector overwrote the ``telemetry`` attribute
of a *caller-supplied* HOG extractor, silently rerouting the caller's
metrics.  The invariant since then: a scope may assign ``obj.telemetry``
only when the same scope constructed ``obj`` (or ``obj`` is ``self``).
Injecting telemetry into borrowed collaborators must go through their
constructor parameters instead.

The heuristic is intentionally local: within one function (or the
module body), ``x.telemetry = ...`` / ``self.attr.telemetry = ...`` is
fine when ``x`` / ``self.attr`` was assigned in that same scope from an
expression that calls a CapWords constructor, e.g. ``x = HogExtractor()``
or ``self.extractor = extractor if extractor is not None else
HogExtractor()`` (the PR 2 fix's own shape).  Anything else is flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    iter_scopes,
    register,
    scope_nodes,
)


def _target_key(node: ast.expr) -> str | None:
    """A stable key for assignment targets we can reason about.

    ``x`` -> ``"x"``; ``self.x`` -> ``"self.x"``; anything deeper or
    dynamic -> ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _calls_constructor(expr: ast.expr) -> bool:
    """Whether ``expr`` (or a sub-expression) calls a CapWords name."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if name and name[:1].isupper():
                return True
    return False


@register
class TelemetryOwnershipRule(Rule):
    name = "telemetry-ownership"
    description = (
        "flag assignment to .telemetry on objects the enclosing scope "
        "did not construct (inject telemetry via the constructor instead)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        for scope in iter_scopes(module.tree):
            constructed: set[str] = set()
            telemetry_assigns: list[tuple[ast.AST, ast.Attribute]] = []
            for node in scope_nodes(scope):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "telemetry"
                    ):
                        telemetry_assigns.append((node, target))
                        continue
                    key = _target_key(target)
                    if key is not None and _calls_constructor(value):
                        constructed.add(key)
            for node, target in telemetry_assigns:
                base = target.value
                if isinstance(base, ast.Name) and base.id == "self":
                    continue
                key = _target_key(base)
                if key is not None and key in constructed:
                    continue
                rendered = ast.unparse(base)
                yield self.finding(
                    module,
                    node,
                    f"assignment to {rendered}.telemetry, but this scope "
                    f"did not construct {rendered}; pass telemetry "
                    f"through its constructor instead of overwriting a "
                    f"borrowed object's sink",
                )
