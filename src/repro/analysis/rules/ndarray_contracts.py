"""``ndarray-boundary-contract``: stage boundaries must declare formats.

Hardware ports of this pipeline keep dataflow verifiable because every
stage boundary has a declared width/depth/format; the software analogue
is :mod:`repro.contracts`.  This rule requires every *public*
module-level function in the ``imgproc`` / ``hog`` / ``detect``
subpackages whose signature takes an ndarray to either

* call a recognized checker (``check_array`` or one of the imgproc
  validators that route through it),
* carry an ``@array_contract(...)`` decorator, or
* carry an explicit ``# repro-lint: disable=ndarray-boundary-contract``
  pragma stating why no contract applies.

Delegation counts: a public wrapper that forwards its arrays to another
public checked function in the same package may keep a pragma instead
of double-checking.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    terminal_name,
)

#: Sub-packages whose public functions form stage boundaries.
BOUNDARY_DIRS = frozenset({"imgproc", "hog", "detect"})

#: Call targets that satisfy the rule: the contracts module itself plus
#: the imgproc validators, which call ``check_array`` internally.
CHECKER_NAMES = frozenset({
    "check_array",
    "array_contract",
    "as_float_image",
    "check_canvas",
    "ensure_grayscale",
    "require_min_size",
})


def _takes_ndarray(fn: ast.FunctionDef) -> list[str]:
    """Names of parameters annotated as ndarrays."""
    params = []
    args = fn.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        args.vararg, args.kwarg,
    ):
        if arg is None or arg.annotation is None:
            continue
        if "ndarray" in ast.unparse(arg.annotation):
            params.append(arg.arg)
    return params


def _is_satisfied(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if terminal_name(target) == "array_contract":
            return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if terminal_name(node.func) in CHECKER_NAMES:
                return True
    return False


@register
class NdarrayBoundaryContractRule(Rule):
    name = "ndarray-boundary-contract"
    description = (
        "public imgproc/hog/detect functions taking ndarray args must "
        "call a repro.contracts checker (or carry an explicit pragma)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        parts = module.path.parts
        if "tests" in parts:
            return
        if not BOUNDARY_DIRS & set(parts[:-1]):
            return
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name.startswith("_"):
                continue
            array_params = _takes_ndarray(stmt)
            if not array_params:
                continue
            if _is_satisfied(stmt):
                continue
            listed = ", ".join(array_params)
            yield self.finding(
                module,
                stmt,
                f"public stage-boundary function {stmt.name}() takes "
                f"ndarray argument(s) ({listed}) but neither calls a "
                f"repro.contracts checker nor declares "
                f"@array_contract; add a contract or an explicit "
                f"pragma",
            )
