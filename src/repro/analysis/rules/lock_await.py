"""``lock-held-across-await``: never suspend while holding a sync lock.

An ``await`` inside ``with lock:`` parks the coroutine *with the lock
held*: every other task — and every worker thread bouncing results via
``call_soon_threadsafe`` — that touches the same lock stalls until the
awaited thing completes, inverting the latency ordering the serve
layer's fairness pump depends on (and inviting loop-deadlock when the
awaited completion itself needs the lock).

The rule fires on any ``await`` lexically inside a *synchronous*
``with`` statement whose context manager looks like a lock — its
terminal name contains ``lock`` (``self._lock``, ``_PLAN_CACHE_LOCK``,
``threading.Lock()``) or it is a local traced to a
``threading.Lock/RLock/Condition/Semaphore`` constructor — provided
the await is CFG-reachable.  ``async with`` is exempt: asyncio locks
are designed to be held across suspension points.

Fix pattern: copy what you need under the lock, release it, then
await; or switch the lock to ``asyncio.Lock`` and ``async with`` if
every holder runs on the loop.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    import_map,
    qualify,
    register,
    terminal_name,
)
from repro.analysis.flow import (
    build_cfg,
    iter_stmt_expressions,
    scope_statements,
)

_LOCK_CTORS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
})


def _lock_locals(
    scope: ast.AST, imports: dict[str, str]
) -> frozenset[str]:
    """Names assigned from a threading lock constructor in ``scope``."""
    names: set[str] = set()
    for node in scope_statements(scope):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None:
            continue
        if qualify(dotted, imports) not in _LOCK_CTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_lockish(expr: ast.expr, lock_names: frozenset[str]) -> bool:
    if isinstance(expr, ast.Call):
        expr = expr.func  # `with threading.Lock():`
    if isinstance(expr, ast.Name) and expr.id in lock_names:
        return True
    terminal = terminal_name(expr)
    return terminal is not None and "lock" in terminal.lower()


def _body_statements(stmts: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of a suite, recursively, staying in this scope."""
    stack: list[ast.stmt] = list(stmts)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler):
                stack.extend(child.body)
            elif hasattr(ast, "match_case") and isinstance(
                child, ast.match_case
            ):
                stack.extend(child.body)


def _awaits_in_stmt(stmt: ast.stmt) -> Iterator[ast.Await]:
    for expr in iter_stmt_expressions(stmt):
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Lambda,)):
                continue
            if isinstance(node, ast.Await):
                yield node
            stack.extend(ast.iter_child_nodes(node))


@register
class LockHeldAcrossAwaitRule(Rule):
    name = "lock-held-across-await"
    description = (
        "no await may appear on any CFG path inside a synchronous "
        "`with <lock>:` region — the coroutine would suspend with the "
        "lock held"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        imports = import_map(module.tree)
        module_locks = _lock_locals(module.tree, imports)
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            lock_names = module_locks | _lock_locals(func, imports)
            cfg = None
            reachable: set[int] = set()
            for node in scope_statements(func):
                if not isinstance(node, ast.With):
                    continue
                held = [
                    item.context_expr
                    for item in node.items
                    if _is_lockish(item.context_expr, lock_names)
                ]
                if not held:
                    continue
                if cfg is None:
                    cfg = build_cfg(func)
                    reachable = cfg.reachable()
                lock_desc = dotted_name(held[0]) or terminal_name(
                    held[0]
                ) or "lock"
                for stmt in _body_statements(node.body):
                    index = cfg.node_for(stmt)
                    if index is None or index not in reachable:
                        continue
                    for awaited in _awaits_in_stmt(stmt):
                        yield self.finding(
                            module,
                            awaited,
                            f"await while holding sync lock "
                            f"{lock_desc!r}: the coroutine suspends "
                            f"with the lock held; release it before "
                            f"awaiting (or use asyncio.Lock with "
                            f"`async with`)",
                        )
