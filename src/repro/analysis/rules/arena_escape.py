"""``arena-loan-escape``: borrowed slab views must die in their frame.

docs/MEMORY.md's single-owner rule: a view handed out by
``BufferArena.get``/``zeros`` (or received as an ``out=`` parameter)
aliases arena storage that the *caller* will recycle — ``release_all``
at frame end, or simply the next frame's loans.  A view that outlives
the frame (stored on ``self``, captured by a closure, or a *derived*
slice of a borrowed ``out=`` returned to someone who thinks they own
it) dangles: it silently reads the next frame's data.

The rule runs a forward taint analysis over the scope CFG:

* ``<arena-ish>.get/zeros/take(...)`` results are **fresh** loans
  (arena-ish: the receiver's terminal name contains ``arena``, or it
  is a local constructed from ``BufferArena(...)``);
* parameters named ``out`` / ``out_*`` (unannotated or annotated with
  an array type) are whole-slab **aliases**; plain assignment
  propagates the alias, while view operations (``reshape``, ``ravel``,
  ``view``, ``transpose``, ``squeeze``, ``swapaxes``, ``.T``, slicing)
  degrade it to a **borrowed** derived view.  Anything else —
  ``.copy()``, arithmetic, ``np.asarray`` — launders the taint.

Findings:

* storing any loan (fresh, borrowed or alias) to an attribute or into
  an attribute-rooted container — the view outlives the frame;
* returning/yielding a *derived* view of a borrowed ``out=`` slab —
  returning the ``out`` parameter itself or a whole-object alias of
  it (the numpy ``out=`` idiom) and returning a fresh same-frame loan
  (the ``_cells_dest`` allocator idiom, where caller and loan share
  the frame) are allowed;
* a nested function or lambda capturing a loan-bound name.

Fix pattern: ``.copy()`` what must outlive the frame, or restructure
so the consumer takes its own loan.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import Any

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    register,
    terminal_name,
)
from repro.analysis.flow import (
    NORMAL,
    CFGNode,
    ForwardAnalysis,
    build_cfg,
    iter_expr_calls,
    iter_stmt_expressions,
    run_forward,
    scope_statements,
)

FRESH = "fresh"
BORROWED = "borrowed"
#: Whole-object alias of an ``out=`` parameter.  Returning it *is* the
#: numpy ``out=`` convention (the caller gets back the storage it
#: handed in); deriving a view from it degrades to :data:`BORROWED`.
ALIAS = "out-alias"

_LOAN_METHODS = frozenset({"get", "zeros", "take"})
_VIEW_METHODS = frozenset({
    "reshape", "ravel", "view", "transpose", "squeeze", "swapaxes",
})


def _is_arena_receiver(expr: ast.expr, arena_vars: frozenset[str]) -> bool:
    if isinstance(expr, ast.Name) and expr.id in arena_vars:
        return True
    terminal = terminal_name(expr)
    return terminal is not None and "arena" in terminal.lower()


def _is_loan_call(call: ast.Call, arena_vars: frozenset[str]) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _LOAN_METHODS
        and _is_arena_receiver(func.value, arena_vars)
    )


def _arena_vars(scope: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    for node in scope_statements(scope):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and terminal_name(node.value.func) == "BufferArena"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _taint(
    expr: ast.expr,
    state: dict[str, str],
    arena_vars: frozenset[str],
) -> str | None:
    """The loan taint of ``expr``'s value under ``state``."""
    if isinstance(expr, ast.Name):
        return state.get(expr.id)
    if isinstance(expr, ast.Call):
        if _is_loan_call(expr, arena_vars):
            return FRESH
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return _derived(_taint(func.value, state, arena_vars))
        return None
    if isinstance(expr, ast.Attribute):
        if expr.attr == "T":
            return _derived(_taint(expr.value, state, arena_vars))
        return None
    if isinstance(expr, ast.Subscript):
        return _derived(_taint(expr.value, state, arena_vars))
    if isinstance(expr, ast.Starred):
        return _taint(expr.value, state, arena_vars)
    if isinstance(expr, ast.IfExp):
        return _join_taint(
            _taint(expr.body, state, arena_vars),
            _taint(expr.orelse, state, arena_vars),
        )
    if isinstance(expr, (ast.Tuple, ast.List)):
        taint: str | None = None
        for element in expr.elts:
            taint = _join_taint(
                taint, _taint(element, state, arena_vars)
            )
        return taint
    if isinstance(expr, ast.NamedExpr):
        return _taint(expr.value, state, arena_vars)
    return None


def _derived(taint: str | None) -> str | None:
    """A view operation turns a whole-slab alias into a borrowed view."""
    return BORROWED if taint == ALIAS else taint


def _join_taint(left: str | None, right: str | None) -> str | None:
    for taint in (BORROWED, ALIAS, FRESH):
        if taint in (left, right):
            return taint
    return None


class _LoanTaint(ForwardAnalysis):
    """name -> FRESH|BORROWED|ALIAS, propagated along normal edges."""

    edge_kinds = (NORMAL,)

    def __init__(
        self, out_params: frozenset[str], arena_vars: frozenset[str]
    ) -> None:
        self._out_params = out_params
        self._arena_vars = arena_vars

    def initial(self) -> dict[str, str]:
        return {name: ALIAS for name in self._out_params}

    def join(
        self, left: dict[str, str], right: dict[str, str]
    ) -> dict[str, str]:
        merged = dict(left)
        for name, taint in right.items():
            merged[name] = _join_taint(merged.get(name), taint) or taint
        return merged

    def transfer(
        self, node: CFGNode, state: dict[str, str]
    ) -> dict[str, str]:
        stmt = node.stmt
        if stmt is None:
            return state
        updates: list[tuple[ast.expr, str | None]] = []
        if isinstance(stmt, ast.Assign):
            taint = _taint(stmt.value, state, self._arena_vars)
            updates = [(target, taint) for target in stmt.targets]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            updates = [(
                stmt.target,
                _taint(stmt.value, state, self._arena_vars),
            )]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            updates = [
                (item.optional_vars,
                 _taint(item.context_expr, state, self._arena_vars))
                for item in stmt.items
                if item.optional_vars is not None
            ]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            updates = [(stmt.target, None)]  # containers not tracked
        if not updates:
            return state
        new_state = dict(state)
        for target, taint in updates:
            for name in _target_names(target):
                if taint is None:
                    new_state.pop(name, None)
                else:
                    new_state[name] = taint
        return new_state


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _slab_annotation(annotation: ast.expr | None) -> bool:
    """Could this parameter annotation denote an ndarray slab?

    Unannotated parameters are assumed slabs (conservative); annotated
    ones count only when the annotation mentions an array type, so
    ``out_paths: frozenset[str]`` is not mistaken for a loan.
    """
    if annotation is None:
        return True
    text = ast.unparse(annotation)
    return any(
        marker in text
        for marker in ("ndarray", "NDArray", "ArrayLike", "Any")
    )


def _out_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    args = func.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    return frozenset(
        arg.arg for arg in every
        if (arg.arg == "out" or arg.arg.startswith("out_"))
        and _slab_annotation(arg.annotation)
    )


@register
class ArenaLoanEscapeRule(Rule):
    name = "arena-loan-escape"
    description = (
        "a borrowed arena/out= slab view must not escape its frame: no "
        "store to self, no return of a derived view, no closure "
        "capture (docs/MEMORY.md single-owner rule)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._check_function(module, func)

    def _check_function(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[Finding]:
        out_params = _out_params(func)
        arena_vars = _arena_vars(func)
        has_loans = any(
            _is_loan_call(call, arena_vars)
            for node in scope_statements(func)
            if isinstance(node, ast.stmt)
            for expr in iter_stmt_expressions(node)
            for call in iter_expr_calls(expr)
        )
        if not out_params and not has_loans:
            return
        cfg = build_cfg(func)
        analysis = _LoanTaint(out_params, arena_vars)
        states: dict[int, Any] = run_forward(cfg, analysis)

        ever_tainted: dict[str, str] = {}
        for state in states.values():
            for name, taint in state.items():
                ever_tainted[name] = (
                    _join_taint(ever_tainted.get(name), taint) or taint
                )

        for stmt in scope_statements(func):
            if not isinstance(stmt, ast.stmt):
                continue
            index = cfg.node_for(stmt)
            if index is None or index not in states:
                continue
            state: dict[str, str] = states[index]
            yield from self._check_statement(
                module, stmt, state, arena_vars
            )

        yield from self._check_closures(module, func, ever_tainted)

    def _check_statement(
        self,
        module: ModuleContext,
        stmt: ast.stmt,
        state: dict[str, str],
        arena_vars: frozenset[str],
    ) -> Iterable[Finding]:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.Assign):
                targets: list[ast.expr] = list(stmt.targets)
                value = stmt.value
            else:
                targets = [stmt.target]
                value = stmt.value
            if value is None:
                return
            taint = _taint(value, state, arena_vars)
            if taint is None:
                return
            for target in targets:
                store: ast.expr | None = None
                if isinstance(target, ast.Attribute):
                    store = target
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    store = target
                if store is not None:
                    label = "borrowed" if taint == ALIAS else taint
                    yield self.finding(
                        module,
                        store,
                        f"{label} slab view escapes via attribute "
                        f"store: the view aliases arena storage the "
                        f"frame will recycle — .copy() it or keep it "
                        f"frame-local (docs/MEMORY.md)",
                    )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            yield from self._check_outflow(
                module, stmt.value, state, arena_vars, "returned"
            )
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            inner = stmt.value.value
            if inner is not None:
                yield from self._check_outflow(
                    module, inner, state, arena_vars, "yielded"
                )

    def _check_outflow(
        self,
        module: ModuleContext,
        value: ast.expr,
        state: dict[str, str],
        arena_vars: frozenset[str],
        verb: str,
    ) -> Iterable[Finding]:
        # Only *derived* borrowed views are escapes: handing back the
        # out parameter itself (ALIAS) is the numpy convention, and a
        # fresh same-frame loan is the allocator idiom.
        if _taint(value, state, arena_vars) != BORROWED:
            return
        yield self.finding(
            module,
            value,
            f"derived view of a borrowed out= slab is {verb}: the "
            f"caller owns that storage — return the out parameter "
            f"itself, or .copy() the view (docs/MEMORY.md)",
        )

    def _check_closures(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        ever_tainted: dict[str, str],
    ) -> Iterable[Finding]:
        if not ever_tainted:
            return
        for node in ast.walk(func):
            if node is func or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            bound = self._bound_names(node)
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in ever_tainted
                    and inner.id not in bound
                ):
                    taint = ever_tainted[inner.id]
                    label = "borrowed" if taint == ALIAS else taint
                    yield self.finding(
                        module,
                        node,
                        f"{label} slab view "
                        f"{inner.id!r} is captured by a nested "
                        f"function: the closure may outlive the loan "
                        f"— pass a .copy() or restructure "
                        f"(docs/MEMORY.md)",
                    )
                    break

    @staticmethod
    def _bound_names(
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> frozenset[str]:
        args = node.args
        bound = {
            arg.arg
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
            )
        }
        if args.vararg is not None:
            bound.add(args.vararg.arg)
        if args.kwarg is not None:
            bound.add(args.kwarg.arg)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    bound.update(_target_names(target))
            elif isinstance(
                inner, (ast.AnnAssign, ast.AugAssign, ast.For,
                        ast.AsyncFor)
            ):
                bound.update(_target_names(inner.target))
        return frozenset(bound)
