"""``async-blocking-call``: the serve event loop must never block.

The serving layer's latency budget (docs/SERVE.md, paper §5 cycle
model) assumes the asyncio loop is always free to run callbacks: one
``time.sleep`` or thread join inside a coroutine stalls *every*
session.  This rule finds blocking calls that are CFG-reachable inside
``async def`` bodies:

* known blocking library calls (``time.sleep``, ``subprocess.run`` and
  friends, ``os.system``, ``select.select``);
* blocking methods on objects the rule can trace to a blocking
  constructor — ``queue.Queue().get()``, ``socket`` I/O,
  ``threading.Thread().join()``, ``ProcessWorkerPool`` transport calls;
* methods of module-local classes whose bodies the rule has summarized
  as may-block (one level of bottom-up summaries: a class whose
  ``close()`` joins its worker threads makes every async
  ``pool.close()`` a finding).

``queue.Queue`` tracing is capacity-aware: ``put`` on an *unbounded*
queue never blocks and is not flagged; ``get`` always can.  Objects
the rule cannot trace (parameters, attributes assigned dynamically)
are never flagged — the rule under-approximates rather than guess.

Fix pattern: ``await asyncio.to_thread(blocking_fn)`` (or the async
equivalent: ``asyncio.sleep``, ``asyncio.Queue``, stream APIs).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.base import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    import_map,
    qualify,
    register,
)
from repro.analysis.flow import (
    build_cfg,
    iter_expr_calls,
    iter_stmt_expressions,
    scope_statements,
)

#: Fully-qualified calls that block regardless of receiver.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "subprocess.run": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.call": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_call":
        "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_output":
        "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.Popen": "use `await asyncio.create_subprocess_exec(...)`",
    "os.system": "use `await asyncio.create_subprocess_shell(...)`",
    "os.waitpid": "use asyncio child-watcher APIs",
    "select.select": "use the event loop's own selector",
    "socket.create_connection": "use `asyncio.open_connection(...)`",
}

#: Constructor (qualified) -> traced kind tag.
_CTOR_KINDS: dict[str, str] = {
    "queue.Queue": "queue",
    "queue.LifoQueue": "queue",
    "queue.PriorityQueue": "queue",
    "queue.SimpleQueue": "simplequeue",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "threading.Thread": "thread",
}

#: Kind tag -> method names that block on such an object.
_KIND_METHODS: dict[str, frozenset[str]] = {
    "queue": frozenset({"get", "join"}),
    "bounded-queue": frozenset({"get", "put", "join"}),
    "simplequeue": frozenset({"get"}),
    "socket": frozenset({
        "recv", "recv_into", "recvfrom", "send", "sendall", "accept",
        "connect",
    }),
    "thread": frozenset({"join"}),
    "pool": frozenset({
        "submit", "submit_batch", "next_message", "close", "join",
    }),
}


def _ctor_tags(call: ast.Call, imports: dict[str, str]) -> frozenset[str]:
    """Kind tags for the object a constructor call produces."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return frozenset()
    qualified = qualify(dotted, imports)
    if qualified.endswith("ProcessWorkerPool"):
        return frozenset({"pool"})
    kind = _CTOR_KINDS.get(qualified)
    if kind is None:
        return frozenset()
    if kind == "queue":
        bounded = bool(call.args) or any(
            keyword.arg == "maxsize"
            and not (
                isinstance(keyword.value, ast.Constant)
                and not keyword.value.value
            )
            for keyword in call.keywords
        )
        if call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) and not first.value:
                bounded = False
        return frozenset({"bounded-queue"}) if bounded else frozenset(
            {"queue"}
        )
    return frozenset({kind})


def _value_tags(
    expr: ast.expr,
    imports: dict[str, str],
    local_classes: frozenset[str],
) -> frozenset[str]:
    """Tags for the value of ``expr`` (constructor calls only)."""
    if not isinstance(expr, ast.Call):
        return frozenset()
    tags = _ctor_tags(expr, imports)
    name = dotted_name(expr.func)
    if name is not None:
        terminal = name.rsplit(".", 1)[-1]
        if terminal in local_classes:
            tags |= frozenset({f"class:{terminal}"})
    return tags


class _ClassEnv:
    """What a class's ``self.*`` attributes are known to hold."""

    def __init__(self) -> None:
        #: attribute -> tags of values assigned to it
        self.attrs: dict[str, set[str]] = {}
        #: attribute -> tags of *elements* stored in it (lists/dicts)
        self.containers: dict[str, set[str]] = {}


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _class_env(
    cls: ast.ClassDef,
    imports: dict[str, str],
    local_classes: frozenset[str],
) -> _ClassEnv:
    env = _ClassEnv()
    methods = [
        item for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # Two passes: the second resolves locals through the attributes the
    # first discovered (`thread = Thread(...); self._threads.append(
    # thread)` and `pool = _Backend(...); self._pools[key] = pool`).
    for _ in range(2):
        for method in methods:
            local = _local_tags(method, imports, local_classes, env)

            def resolve(expr: ast.expr) -> frozenset[str]:
                tags = _value_tags(expr, imports, local_classes)
                if tags:
                    return tags
                if isinstance(expr, ast.Name):
                    return frozenset(local.get(expr.id, set()))
                return frozenset()

            for node in scope_statements(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    if isinstance(node, ast.Assign):
                        targets: list[ast.expr] = list(node.targets)
                        value = node.value
                    else:
                        targets = [node.target]
                        value = node.value  # may be None
                    if value is None:
                        continue
                    tags = resolve(value)
                    if not tags:
                        continue
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            env.attrs.setdefault(attr, set()).update(tags)
                        elif isinstance(target, ast.Subscript):
                            base = _self_attr(target.value)
                            if base is not None:
                                env.containers.setdefault(
                                    base, set()
                                ).update(tags)
                elif isinstance(node, ast.Call):
                    # self.X.append(obj) marks X's elements.
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "append"
                        and node.args
                    ):
                        base = _self_attr(func.value)
                        if base is not None:
                            tags = resolve(node.args[0])
                            if tags:
                                env.containers.setdefault(
                                    base, set()
                                ).update(tags)
    return env


def _local_tags(
    scope: ast.FunctionDef | ast.AsyncFunctionDef,
    imports: dict[str, str],
    local_classes: frozenset[str],
    env: _ClassEnv | None,
) -> dict[str, set[str]]:
    """Flow-insensitive tags for names local to ``scope``."""
    tags: dict[str, set[str]] = {}

    def expr_tags(expr: ast.expr) -> frozenset[str]:
        direct = _value_tags(expr, imports, local_classes)
        if direct:
            return direct
        if env is None:
            return frozenset()
        attr = _self_attr(expr)
        if attr is not None:
            return frozenset(env.attrs.get(attr, set()))
        # self.X[k] / self.X.get(k) / self.X.values() element reads
        if isinstance(expr, ast.Subscript):
            base = _self_attr(expr.value)
            if base is not None:
                return frozenset(env.containers.get(base, set()))
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            if expr.func.attr in ("get", "values", "pop"):
                base = _self_attr(expr.func.value)
                if base is not None:
                    return frozenset(env.containers.get(base, set()))
        return frozenset()

    for node in scope_statements(scope):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                continue
            found = expr_tags(value)
            if not found:
                continue
            targets = (
                list(node.targets) if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    tags.setdefault(target.id, set()).update(found)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # Iterating a traced container binds element tags.
            iter_expr = node.iter
            found = frozenset()
            if env is not None:
                base = _self_attr(iter_expr)
                if base is None and isinstance(iter_expr, ast.Call):
                    func = iter_expr.func
                    if isinstance(func, ast.Attribute) and func.attr in (
                        "values", "copy",
                    ):
                        base = _self_attr(func.value)
                if base is not None:
                    found = frozenset(env.containers.get(base, set()))
            if found and isinstance(node.target, ast.Name):
                tags.setdefault(node.target.id, set()).update(found)
    return tags


def _receiver_tags(
    receiver: ast.expr,
    local: dict[str, set[str]],
    env: _ClassEnv | None,
) -> frozenset[str]:
    if isinstance(receiver, ast.Name):
        return frozenset(local.get(receiver.id, set()))
    attr = _self_attr(receiver)
    if attr is not None and env is not None:
        return frozenset(env.attrs.get(attr, set()))
    if isinstance(receiver, ast.Subscript) and env is not None:
        base = _self_attr(receiver.value)
        if base is not None:
            return frozenset(env.containers.get(base, set()))
    return frozenset()


def _blocking_reason(
    call: ast.Call,
    imports: dict[str, str],
    local: dict[str, set[str]],
    env: _ClassEnv | None,
    summaries: dict[str, dict[str, bool]],
    own_class: str | None,
) -> str | None:
    """Why this call may block, or None."""
    dotted = dotted_name(call.func)
    if dotted is not None:
        qualified = qualify(dotted, imports)
        remedy = _BLOCKING_CALLS.get(qualified)
        if remedy is not None:
            return f"{qualified}() blocks; {remedy}"
    if not isinstance(call.func, ast.Attribute):
        return None
    method = call.func.attr
    receiver = call.func.value
    if (
        isinstance(receiver, ast.Name)
        and receiver.id == "self"
        and own_class is not None
    ):
        if summaries.get(own_class, {}).get(method):
            return (
                f"self.{method}() may block "
                f"(see {own_class}.{method})"
            )
        return None
    for tag in _receiver_tags(receiver, local, env):
        if tag.startswith("class:"):
            cls = tag[len("class:"):]
            if summaries.get(cls, {}).get(method):
                return f"{cls}.{method}() may block"
        elif method in _KIND_METHODS.get(tag, frozenset()):
            noun = tag.replace("bounded-", "bounded ")
            return f".{method}() on a {noun} blocks"
    return None


@register
class AsyncBlockingCallRule(Rule):
    name = "async-blocking-call"
    description = (
        "no blocking call (time.sleep, subprocess, blocking queue/"
        "socket ops, thread joins, ProcessWorkerPool transport) may be "
        "reachable inside an async def body; move it off-loop via "
        "await asyncio.to_thread(...)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        tree = module.tree
        imports = import_map(tree)
        classes = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        ]
        local_classes = frozenset(cls.name for cls in classes)
        envs = {
            cls.name: _class_env(cls, imports, local_classes)
            for cls in classes
        }
        summaries = self._summarize(
            classes, envs, imports, local_classes
        )
        owner: dict[int, str] = {}
        for cls in classes:
            for item in cls.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    owner[id(item)] = cls.name
        for func in ast.walk(tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            own_class = owner.get(id(func))
            env = envs.get(own_class) if own_class else None
            local = _local_tags(func, imports, local_classes, env)
            cfg = build_cfg(func)
            reachable = cfg.reachable()
            for call, stmt in _scope_calls(func):
                index = cfg.node_for(stmt)
                if index is None or index not in reachable:
                    continue
                reason = _blocking_reason(
                    call, imports, local, env, summaries, own_class
                )
                if reason is not None:
                    yield self.finding(
                        module,
                        call,
                        f"blocking call on the event loop: {reason}; "
                        f"wrap in `await asyncio.to_thread(...)` or "
                        f"use the async equivalent",
                    )

    def _summarize(
        self,
        classes: list[ast.ClassDef],
        envs: dict[str, _ClassEnv],
        imports: dict[str, str],
        local_classes: frozenset[str],
    ) -> dict[str, dict[str, bool]]:
        """May-block fact per sync method of each module-local class."""
        summaries: dict[str, dict[str, bool]] = {
            cls.name: {
                item.name: False
                for item in cls.body
                if isinstance(item, ast.FunctionDef)
            }
            for cls in classes
        }
        for _ in range(len(classes) + 2):
            changed = False
            for cls in classes:
                env = envs[cls.name]
                for item in cls.body:
                    if not isinstance(item, ast.FunctionDef):
                        continue
                    if summaries[cls.name][item.name]:
                        continue
                    local = _local_tags(
                        item, imports, local_classes, env
                    )
                    for call, _stmt in _scope_calls(item):
                        if _blocking_reason(
                            call, imports, local, env, summaries,
                            cls.name,
                        ):
                            summaries[cls.name][item.name] = True
                            changed = True
                            break
            if not changed:
                break
        return summaries


def _scope_calls(
    scope: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.Call, ast.stmt]]:
    """``(call, enclosing_statement)`` for this scope's own calls."""
    for node in scope_statements(scope):
        if not isinstance(node, ast.stmt):
            continue
        for expr in iter_stmt_expressions(node):
            for call in iter_expr_calls(expr):
                yield call, node
