"""Built-in lint rules.

Importing this package registers every rule with
:func:`repro.analysis.base.register`; the import happens in
:mod:`repro.analysis` so ``get_rules()`` always sees the full set.
"""

from __future__ import annotations

from repro.analysis.rules.arena_escape import ArenaLoanEscapeRule
from repro.analysis.rules.async_blocking import AsyncBlockingCallRule
from repro.analysis.rules.lock_await import LockHeldAcrossAwaitRule
from repro.analysis.rules.loop_telemetry import LoopThreadTelemetryRule
from repro.analysis.rules.ndarray_contracts import NdarrayBoundaryContractRule
from repro.analysis.rules.randomness import UnseededRandomnessRule
from repro.analysis.rules.shm_lifecycle import ShmLifecycleRule
from repro.analysis.rules.telemetry_names import TelemetryNamesRule
from repro.analysis.rules.telemetry_ownership import TelemetryOwnershipRule

__all__ = [
    "ArenaLoanEscapeRule",
    "AsyncBlockingCallRule",
    "LockHeldAcrossAwaitRule",
    "LoopThreadTelemetryRule",
    "NdarrayBoundaryContractRule",
    "ShmLifecycleRule",
    "TelemetryNamesRule",
    "TelemetryOwnershipRule",
    "UnseededRandomnessRule",
]
