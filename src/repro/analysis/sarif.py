"""SARIF 2.1.0 reporter for lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-review
tooling ingests — GitHub code scanning, IDE problem panes.  One run,
one tool (``repro-das lint``), one rule entry per registered rule, one
result per finding.  The emitted document validates against the
published sarif-2.1.0 schema; ``tests/test_analysis.py`` checks the
invariants we rely on (rule indices, artifact URIs, region anchors).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.base import Finding, Rule

#: The SARIF spec version emitted, and the schema it points at.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)

_TOOL_NAME = "repro-das lint"


def render_sarif_report(
    findings: Sequence[Finding],
    *,
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    """A SARIF 2.1.0 document as an indented JSON string.

    Findings whose rule is not in ``rules`` (synthetic ``parse-error``
    findings) get an on-the-fly rule entry so every result's
    ``ruleIndex`` resolves.
    """
    rule_ids = [rule.name for rule in rules]
    descriptions = {rule.name: rule.description for rule in rules}
    for finding in findings:
        if finding.rule not in descriptions:
            rule_ids.append(finding.rule)
            descriptions[finding.rule] = (
                "synthetic diagnostic emitted by the lint runner"
            )
    index_of = {name: index for index, name in enumerate(rule_ids)}

    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "rules": [
                            {
                                "id": name,
                                "shortDescription": {
                                    "text": descriptions[name]
                                },
                            }
                            for name in rule_ids
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {
                        "text": "repository root the lint ran from"
                    }}
                },
                "properties": {"checkedFiles": checked_files},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
