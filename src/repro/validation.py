"""Shared string-choice validation.

Scorer / backend / strategy names are accepted in several places
(``DetectorConfig``, the CLI, the stream pipeline); routing them all
through one helper keeps the accepted values and the error message from
drifting apart between entry points.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ParameterError


def validate_choice(value: str, choices: Sequence[str], name: str) -> str:
    """Return ``value`` if it is one of ``choices``, else raise.

    Raises :class:`~repro.errors.ParameterError` with a message naming
    the parameter and the full accepted set.
    """
    if value not in choices:
        raise ParameterError(
            f"{name} must be one of {tuple(choices)}, got {value!r}"
        )
    return value
