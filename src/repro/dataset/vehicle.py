"""Synthetic vehicle windows — the paper's second object class.

Section 2 notes HOG+SVM "has also been employed in detection of other
object classes such as vehicles [17]", and the architecture's parallel
SVM classifier instances exist precisely to run several object models
over one shared feature extraction.  This module supplies that second
class: rear-view car silhouettes (body slab, cabin, wheels, lights) in
a landscape 64x128 window — the transpose of the pedestrian window, so
both classes share cell geometry and thus the same HOG grid.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.background import add_clutter, negative_window, textured_background
from repro.dataset.windows import WindowSet
from repro.errors import ParameterError
from repro.hog.parameters import HogParameters
from repro.imgproc.draw import fill_ellipse, fill_polygon, fill_rectangle
from repro.imgproc.filters import gaussian_blur

#: HOG layout for the vehicle class: landscape 128x64 window, same cell
#: and block geometry as the pedestrian model (descriptor length 3780).
VEHICLE_HOG_PARAMETERS = HogParameters(window_width=128, window_height=64)


def render_vehicle(
    rng: np.random.Generator,
    height: int = 64,
    width: int = 128,
) -> np.ndarray:
    """Render one rear-view vehicle into a landscape window."""
    if height < 16 or width < 32:
        raise ParameterError(f"window {height}x{width} too small for a vehicle")
    canvas = textured_background(rng, height, width)
    if rng.random() < 0.5:
        add_clutter(canvas, rng, int(rng.integers(1, 3)), contrast=0.2)

    contrast = float(
        np.exp(rng.uniform(np.log(0.12), np.log(0.45))) * rng.choice((-1.0, 1.0))
    )
    body_value = float(np.clip(canvas.mean() + contrast, 0.02, 0.98))

    car_w = rng.uniform(0.62, 0.82) * width
    car_h = rng.uniform(0.55, 0.72) * height
    left = (width - car_w) / 2.0 + rng.uniform(-0.04, 0.04) * width
    bottom = height * rng.uniform(0.82, 0.92)
    top = bottom - car_h

    # Body slab.
    body_top = top + 0.35 * car_h
    fill_rectangle(canvas, body_top, left, bottom - body_top, car_w, body_value)
    # Cabin trapezoid.
    cabin_inset = rng.uniform(0.08, 0.18) * car_w
    fill_polygon(
        canvas,
        rows=np.array([top, top, body_top, body_top]),
        cols=np.array(
            [left + cabin_inset, left + car_w - cabin_inset, left + car_w, left]
        ),
        value=float(np.clip(body_value + rng.uniform(-0.08, 0.08), 0, 1)),
    )
    # Rear window (darker inset within the cabin).
    win_value = float(np.clip(body_value - 0.5 * contrast, 0, 1))
    fill_polygon(
        canvas,
        rows=np.array([top + 0.12 * car_h, top + 0.12 * car_h, body_top, body_top]),
        cols=np.array(
            [
                left + cabin_inset * 1.6,
                left + car_w - cabin_inset * 1.6,
                left + car_w - cabin_inset * 0.7,
                left + cabin_inset * 0.7,
            ]
        ),
        value=win_value,
        alpha=0.9,
    )
    # Wheels.
    wheel_r = rng.uniform(0.10, 0.14) * car_w / 2.0 + 2.0
    wheel_value = float(np.clip(canvas.mean() - abs(contrast), 0.0, 1.0))
    for frac in (0.18, 0.82):
        fill_ellipse(canvas, bottom, left + frac * car_w, wheel_r, wheel_r,
                     wheel_value)
    # Tail lights.
    light_value = float(np.clip(body_value + 0.25, 0, 1))
    for frac in (0.08, 0.92):
        fill_ellipse(
            canvas, body_top + 0.2 * (bottom - body_top), left + frac * car_w,
            max(1.5, 0.03 * car_h), max(2.0, 0.04 * car_w), light_value,
        )

    canvas = gaussian_blur(canvas, sigma=float(rng.uniform(0.6, 1.4)))
    canvas += rng.normal(0.0, float(rng.uniform(0.02, 0.05)), size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def vehicle_window_set(
    rng: np.random.Generator,
    n_positive: int,
    n_negative: int,
    *,
    height: int = 64,
    width: int = 128,
) -> WindowSet:
    """A labeled vehicle / background window set (1 = vehicle)."""
    if n_positive < 0 or n_negative < 0:
        raise ParameterError("window counts must be >= 0")
    images = [render_vehicle(rng, height, width) for _ in range(n_positive)]
    images += [
        negative_window(rng, height, width) for _ in range(n_negative)
    ]
    labels = np.concatenate(
        [np.ones(n_positive, dtype=np.intp), np.zeros(n_negative, dtype=np.intp)]
    )
    return WindowSet(images=images, labels=labels)
