"""The synthetic INRIA-substitute dataset facade.

:class:`SyntheticPedestrianDataset` deterministically generates train
and test splits sized like the paper's INRIA protocol (test: 1126
positive, 4530 negative windows), plus full street scenes.  The same
``seed`` always reproduces the same windows; train and test derive from
independent RNG streams so they never share samples.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro.dataset.background import negative_window
from repro.dataset.pedestrian import render_pedestrian
from repro.dataset.scene import Scene, make_street_scene
from repro.dataset.windows import WindowSet
from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class DatasetSizes:
    """Split sizes.  Test defaults follow the paper exactly (Section 4)."""

    train_positive: int = 800
    train_negative: int = 1600
    test_positive: int = 1126
    test_negative: int = 4530

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            if value < 0:
                raise ParameterError(f"{name} must be >= 0, got {value}")

    def scaled(self, fraction: float) -> "DatasetSizes":
        """A proportionally smaller (or larger) copy, at least 1 per split."""
        if fraction <= 0:
            raise ParameterError(f"fraction must be positive, got {fraction}")
        return DatasetSizes(
            train_positive=max(1, round(self.train_positive * fraction)),
            train_negative=max(1, round(self.train_negative * fraction)),
            test_positive=max(1, round(self.test_positive * fraction)),
            test_negative=max(1, round(self.test_negative * fraction)),
        )


class SyntheticPedestrianDataset:
    """Deterministic synthetic pedestrian window dataset.

    Parameters
    ----------
    seed:
        Master seed; all splits derive from it deterministically.
    sizes:
        Split sizes; default test sizes replicate the paper's 1126/4530.
    window_height, window_width:
        Detection window geometry (paper: 128x64).
    """

    def __init__(
        self,
        seed: int = 0,
        sizes: DatasetSizes | None = None,
        *,
        window_height: int = 128,
        window_width: int = 64,
    ) -> None:
        if window_height < 16 or window_width < 8:
            raise ParameterError(
                f"window {window_height}x{window_width} is too small"
            )
        self.seed = int(seed)
        self.sizes = sizes if sizes is not None else DatasetSizes()
        self.window_height = int(window_height)
        self.window_width = int(window_width)
        self._cache: dict[str, WindowSet] = {}

    def _stream(self, name: str) -> np.random.Generator:
        """An independent, named RNG stream derived from the master seed.

        Uses CRC32 of the stream name (not Python's ``hash``, which is
        salted per process) so every run reproduces the same data.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, zlib.crc32(name.encode("utf-8"))])
        )

    def _make_split(self, name: str, n_pos: int, n_neg: int) -> WindowSet:
        rng = self._stream(name)
        images = []
        for _ in range(n_pos):
            img, _ = render_pedestrian(rng, self.window_height, self.window_width)
            images.append(img)
        for _ in range(n_neg):
            images.append(
                negative_window(rng, self.window_height, self.window_width)
            )
        labels = np.concatenate([np.ones(n_pos, dtype=np.intp),
                                 np.zeros(n_neg, dtype=np.intp)])
        return WindowSet(images=images, labels=labels)

    def train_windows(self) -> WindowSet:
        """The training split (cached after first generation)."""
        if "train" not in self._cache:
            self._cache["train"] = self._make_split(
                "train", self.sizes.train_positive, self.sizes.train_negative
            )
        return self._cache["train"]

    def test_windows(self) -> WindowSet:
        """The test split (cached after first generation)."""
        if "test" not in self._cache:
            self._cache["test"] = self._make_split(
                "test", self.sizes.test_positive, self.sizes.test_negative
            )
        return self._cache["test"]

    def make_scene(
        self,
        height: int = 480,
        width: int = 640,
        n_pedestrians: int = 3,
        *,
        scene_index: int = 0,
        pedestrian_heights: tuple[int, int] | None = None,
    ) -> Scene:
        """A street scene from the dataset's scene stream.

        ``scene_index`` selects among deterministic scenes so callers
        can generate distinct frames reproducibly.
        """
        rng = self._stream(f"scene-{scene_index}")
        return make_street_scene(
            rng,
            height=height,
            width=width,
            n_pedestrians=n_pedestrians,
            pedestrian_heights=pedestrian_heights,
        )
