"""Labeled window collections."""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError


@dataclasses.dataclass
class WindowSet:
    """A set of fixed-role window images with binary labels.

    Attributes
    ----------
    images:
        List of 2-D grayscale windows.  All the same size for freshly
        generated sets; up-sampling (the paper's scale protocol) keeps
        per-set uniformity but changes the size.
    labels:
        ``(N,)`` int array; 1 = pedestrian, 0 = background.
    """

    images: list[np.ndarray]
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.intp).ravel()
        if len(self.images) != self.labels.size:
            raise ShapeError(
                f"{len(self.images)} images but {self.labels.size} labels"
            )
        if self.labels.size and not np.all(np.isin(self.labels, (0, 1))):
            raise ShapeError("labels must be 0 or 1")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def n_positive(self) -> int:
        return int(self.labels.sum())

    @property
    def n_negative(self) -> int:
        return int(self.labels.size - self.labels.sum())

    def subset(self, indices: Sequence[int]) -> "WindowSet":
        """A new set containing the windows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return WindowSet(
            images=[self.images[i] for i in idx],
            labels=self.labels[idx],
        )

    @staticmethod
    def concatenate(sets: Sequence["WindowSet"]) -> "WindowSet":
        """Merge several window sets, preserving order."""
        images: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for s in sets:
            images.extend(s.images)
            labels.append(s.labels)
        merged = np.concatenate(labels) if labels else np.empty(0, dtype=np.intp)
        return WindowSet(images=images, labels=merged)
