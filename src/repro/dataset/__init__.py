"""Synthetic INRIA-substitute pedestrian dataset.

The paper verifies its feature-scaling method on the INRIA person
dataset (1126 positive / 4530 negative test windows).  INRIA images are
not redistributable here, so this package provides a deterministic,
seeded synthetic substitute that preserves what the experiment actually
exercises: window images whose class-discriminative signal lives in
local gradient-orientation structure (articulated, person-shaped
silhouettes vs. textured/cluttered backgrounds), consumed through the
identical HOG -> (scaling) -> SVM code paths.

See DESIGN.md ("Substitutions") for the full justification.
"""

from repro.dataset.pedestrian import PedestrianAppearance, render_pedestrian
from repro.dataset.background import (
    textured_background,
    add_clutter,
    negative_window,
)
from repro.dataset.windows import WindowSet
from repro.dataset.synthetic import SyntheticPedestrianDataset, DatasetSizes
from repro.dataset.augment import upsample_window, upsample_window_set
from repro.dataset.scene import (
    Scene,
    GroundTruthBox,
    make_street_scene,
    make_traffic_scene,
)
from repro.dataset.vehicle import (
    VEHICLE_HOG_PARAMETERS,
    render_vehicle,
    vehicle_window_set,
)

__all__ = [
    "PedestrianAppearance",
    "render_pedestrian",
    "textured_background",
    "add_clutter",
    "negative_window",
    "WindowSet",
    "SyntheticPedestrianDataset",
    "DatasetSizes",
    "upsample_window",
    "upsample_window_set",
    "Scene",
    "GroundTruthBox",
    "make_street_scene",
    "make_traffic_scene",
    "VEHICLE_HOG_PARAMETERS",
    "render_vehicle",
    "vehicle_window_set",
]
