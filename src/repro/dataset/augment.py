"""The paper's test-set up-sampling protocol (Section 4).

"The original test dataset of INRIA was then up-sampled by using the
scale value of 1.1 to 2 with the step size of 0.1 to generate a test
dataset for human at various window sizes from 64x128 to 128x256."

:func:`upsample_window_set` applies exactly that: every window is
enlarged by the scale factor so the pedestrian appears bigger than the
trained 64x128 model, and the two detector configurations of Figure 3
must shrink it back — in the pixel domain (conventional) or in the
feature domain (proposed).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.windows import WindowSet
from repro.errors import ParameterError
from repro.imgproc.resize import Interpolation, resize

#: The paper's scale sweep: 1.1 to 2.0 in steps of 0.1.
PAPER_SCALES: tuple[float, ...] = tuple(round(1.0 + 0.1 * i, 1) for i in range(1, 11))

#: The subset reported in Table 1.
TABLE1_SCALES: tuple[float, ...] = (1.1, 1.2, 1.3, 1.4, 1.5)


def upsample_window(
    image: np.ndarray,
    scale: float,
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Enlarge one window by ``scale`` (> 1), rounding the output size."""
    if scale < 1.0:
        raise ParameterError(
            f"the protocol up-samples; scale must be >= 1, got {scale}"
        )
    out_shape = (round(image.shape[0] * scale), round(image.shape[1] * scale))
    return resize(image, out_shape, method=method)


def upsample_window_set(
    windows: WindowSet,
    scale: float,
    method: Interpolation | str = Interpolation.BILINEAR,
) -> WindowSet:
    """Apply :func:`upsample_window` to every window in the set."""
    images = [upsample_window(img, scale, method=method) for img in windows.images]
    return WindowSet(images=images, labels=windows.labels.copy())
