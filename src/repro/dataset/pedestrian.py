"""Articulated pedestrian silhouette rendering.

Renders a randomized human figure — head, neck, torso, two arms, two
legs in a walking pose — into a detection window, following the INRIA
cropping convention (person height about 0.75 of the window height,
centered).  Randomized pose, proportions, per-part intensity, contrast
polarity, blur and sensor noise give the classifier a non-trivial
within-class variance while keeping the dominant HOG signature (strong
vertical head/torso/leg contours) that makes real pedestrian windows
separable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dataset.background import add_clutter, textured_background
from repro.errors import ParameterError
from repro.imgproc.draw import draw_line, fill_ellipse, fill_polygon, fill_rectangle
from repro.imgproc.filters import gaussian_blur


@dataclasses.dataclass(frozen=True)
class PedestrianAppearance:
    """Sampled appearance parameters of one rendered pedestrian.

    All linear measures are fractions of the person height ``P``;
    angles are radians.  Returned alongside the image so tests and
    dataset tooling can reason about what was drawn.
    """

    person_height_frac: float
    contrast: float
    head_radius: float
    shoulder_width: float
    hip_width: float
    leg_spread: float
    arm_angle_left: float
    arm_angle_right: float
    lean: float
    blur_sigma: float
    noise_sigma: float


def sample_appearance(rng: np.random.Generator) -> PedestrianAppearance:
    """Draw a random appearance from the generator's distribution.

    Contrast is log-uniform-ish down to barely-visible (0.05): the
    hardest INRIA positives are low-contrast figures in shade, and the
    classifier's error budget (the paper's ~2 % miss rate) must come
    from somewhere.
    """
    contrast_mag = float(np.exp(rng.uniform(np.log(0.11), np.log(0.42))))
    contrast = float(contrast_mag * rng.choice((-1.0, 1.0)))
    return PedestrianAppearance(
        person_height_frac=float(rng.uniform(0.68, 0.82)),
        contrast=contrast,
        head_radius=float(rng.uniform(0.05, 0.08)),
        shoulder_width=float(rng.uniform(0.22, 0.34)),
        hip_width=float(rng.uniform(0.15, 0.26)),
        leg_spread=float(rng.uniform(0.02, 0.40)),
        arm_angle_left=float(rng.uniform(0.05, 0.55)),
        arm_angle_right=float(rng.uniform(0.05, 0.55)),
        lean=float(rng.uniform(-0.09, 0.09)),
        blur_sigma=float(rng.uniform(0.6, 1.6)),
        noise_sigma=float(rng.uniform(0.02, 0.06)),
    )


def _draw_figure(
    canvas: np.ndarray,
    rng: np.random.Generator,
    top: float,
    center_col: float,
    person_height: float,
    base_value: float,
    appearance: PedestrianAppearance,
) -> None:
    """Rasterize the articulated figure into ``canvas`` in place."""
    p = person_height
    app = appearance
    jitter = lambda: float(rng.uniform(-0.04, 0.04))  # noqa: E731 — per-part shade

    head_r = app.head_radius * p
    head_row = top + head_r * 1.1
    head_col = center_col + app.lean * p * 0.2
    fill_ellipse(canvas, head_row, head_col, head_r * 1.15, head_r,
                 base_value + jitter())

    neck_top = head_row + head_r
    shoulder_row = top + 0.16 * p
    hip_row = top + 0.52 * p
    sh_half = app.shoulder_width * p / 2.0
    hip_half = app.hip_width * p / 2.0
    torso_shift = app.lean * p * 0.5

    draw_line(canvas, neck_top, head_col, shoulder_row, center_col,
              base_value + jitter(), thickness=max(1.5, 0.05 * p))
    fill_polygon(
        canvas,
        rows=np.array([shoulder_row, shoulder_row, hip_row, hip_row]),
        cols=np.array(
            [
                center_col - sh_half,
                center_col + sh_half,
                center_col + hip_half + torso_shift,
                center_col - hip_half + torso_shift,
            ]
        ),
        value=base_value + jitter(),
    )

    arm_len = 0.38 * p
    arm_thick = max(1.5, 0.045 * p)
    for side, angle in ((-1.0, app.arm_angle_left), (1.0, app.arm_angle_right)):
        start_r = shoulder_row + 0.02 * p
        start_c = center_col + side * sh_half * 0.9
        end_r = start_r + arm_len * np.cos(angle)
        end_c = start_c + side * arm_len * np.sin(angle)
        draw_line(canvas, start_r, start_c, end_r, end_c,
                  base_value + jitter(), thickness=arm_thick)

    leg_len = p - (hip_row - top)
    leg_thick = max(2.0, 0.06 * p)
    for side in (-1.0, 1.0):
        phase = app.leg_spread if side > 0 else -app.leg_spread * 0.6
        start_c = center_col + torso_shift + side * hip_half * 0.55
        end_r = top + p
        end_c = start_c + np.tan(phase) * leg_len
        draw_line(canvas, hip_row, start_c, end_r, end_c,
                  base_value + jitter(), thickness=leg_thick)


def render_pedestrian(
    rng: np.random.Generator,
    height: int = 128,
    width: int = 64,
    *,
    appearance: PedestrianAppearance | None = None,
    with_clutter: bool = True,
) -> tuple[np.ndarray, PedestrianAppearance]:
    """Render one positive window; returns ``(image, appearance)``.

    The figure is vertically centered with small positional jitter,
    mirroring INRIA's 64x128 crops where the person spans roughly the
    central 96 rows.
    """
    if height < 16 or width < 8:
        raise ParameterError(
            f"window {height}x{width} is too small to draw a figure"
        )
    app = appearance if appearance is not None else sample_appearance(rng)
    canvas = textured_background(rng, height, width)
    if with_clutter and rng.random() < 0.6:
        add_clutter(canvas, rng, int(rng.integers(1, 4)), contrast=0.25)

    person_height = app.person_height_frac * height
    top = (height - person_height) / 2.0 + rng.uniform(-0.03, 0.03) * height
    center_col = width / 2.0 + rng.uniform(-0.06, 0.06) * width
    base_value = float(np.clip(canvas.mean() + app.contrast, 0.02, 0.98))

    _draw_figure(canvas, rng, top, center_col, person_height, base_value, app)

    # Partial occlusion (bags, railings, other road users) on ~25 % of
    # positives, covering up to a third of the figure.
    if with_clutter and rng.random() < 0.25:
        occ_value = float(np.clip(canvas.mean() + rng.uniform(-0.3, 0.3), 0, 1))
        occ_h = rng.uniform(0.10, 0.33) * person_height
        occ_w = rng.uniform(0.3, 0.9) * width
        occ_top = top + rng.uniform(0.3, 1.0) * (person_height - occ_h)
        fill_rectangle(
            canvas, occ_top, rng.uniform(0, width - occ_w), occ_h, occ_w,
            occ_value, alpha=float(rng.uniform(0.7, 1.0)),
        )

    canvas = gaussian_blur(canvas, sigma=app.blur_sigma)
    canvas += rng.normal(0.0, app.noise_sigma, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0), app
