"""Background texture and clutter synthesis.

Negative windows must be *hard enough* to exercise the classifier: flat
noise would be trivially separable from any silhouette.  We therefore
compose smooth low-frequency textures with structured clutter — poles,
bars, boxes and blobs — that produce the strong vertical gradient runs
HOG-based pedestrian detectors are known to confuse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.imgproc.draw import draw_line, fill_ellipse, fill_rectangle
from repro.imgproc.filters import gaussian_blur


def textured_background(
    rng: np.random.Generator,
    height: int,
    width: int,
    *,
    base_level: float | None = None,
    roughness: float = 0.08,
) -> np.ndarray:
    """Smooth low-frequency texture around a random (or given) base level."""
    if height < 1 or width < 1:
        raise ParameterError(f"background size must be positive, got {height}x{width}")
    if base_level is None:
        base_level = float(rng.uniform(0.25, 0.75))
    noise = rng.normal(0.0, 1.0, size=(height, width))
    smooth = gaussian_blur(noise, sigma=max(2.0, min(height, width) / 16.0))
    smooth /= max(np.abs(smooth).max(), 1e-12)
    out = base_level + roughness * smooth
    # A faint illumination gradient, as outdoor scenes have.
    slope = rng.uniform(-0.08, 0.08)
    out += slope * (np.arange(height)[:, None] / max(height - 1, 1) - 0.5)
    return np.clip(out, 0.0, 1.0)


def add_clutter(
    canvas: np.ndarray,
    rng: np.random.Generator,
    n_items: int,
    *,
    contrast: float = 0.35,
) -> None:
    """Draw random structured clutter into ``canvas`` in place.

    Item types: vertical pole (the classic pedestrian false positive),
    horizontal bar, box, blob, and diagonal edge.
    """
    h, w = canvas.shape
    for _ in range(n_items):
        value = float(np.clip(canvas.mean() + rng.uniform(-contrast, contrast), 0, 1))
        kind = rng.integers(0, 5)
        if kind == 0:  # vertical pole
            col = rng.uniform(0, w)
            draw_line(
                canvas,
                rng.uniform(-0.2 * h, 0.2 * h),
                col,
                rng.uniform(0.8 * h, 1.2 * h),
                col + rng.uniform(-2, 2),
                value,
                thickness=rng.uniform(1.5, max(2.0, w / 12)),
            )
        elif kind == 1:  # horizontal bar
            row = rng.uniform(0, h)
            draw_line(
                canvas,
                row,
                rng.uniform(-0.2 * w, 0.2 * w),
                row + rng.uniform(-2, 2),
                rng.uniform(0.8 * w, 1.2 * w),
                value,
                thickness=rng.uniform(1.5, max(2.0, h / 20)),
            )
        elif kind == 2:  # box
            fill_rectangle(
                canvas,
                rng.uniform(0, h * 0.8),
                rng.uniform(0, w * 0.8),
                rng.uniform(h * 0.1, h * 0.5),
                rng.uniform(w * 0.1, w * 0.5),
                value,
                alpha=float(rng.uniform(0.6, 1.0)),
            )
        elif kind == 3:  # blob
            fill_ellipse(
                canvas,
                rng.uniform(0, h),
                rng.uniform(0, w),
                rng.uniform(2, h / 4),
                rng.uniform(2, w / 3),
                value,
                alpha=float(rng.uniform(0.6, 1.0)),
            )
        else:  # diagonal edge
            draw_line(
                canvas,
                rng.uniform(0, h),
                rng.uniform(0, w),
                rng.uniform(0, h),
                rng.uniform(0, w),
                value,
                thickness=rng.uniform(1.0, 4.0),
            )


def _pedestrian_confuser(
    canvas: np.ndarray, rng: np.random.Generator, contrast: float
) -> None:
    """Structures that mimic a pedestrian's HOG signature.

    These are the windows that make the problem hard: paired vertical
    poles (leg-like), a blob over a box (head-over-torso-like), or a
    narrow tree-trunk with branch stubs.
    """
    h, w = canvas.shape
    sign = float(rng.choice((-1.0, 1.0)))
    value = float(np.clip(canvas.mean() + sign * rng.uniform(0.12, contrast), 0, 1))
    kind = rng.integers(0, 4)
    if kind == 0:  # paired poles ~ legs
        gap = rng.uniform(w * 0.08, w * 0.25)
        center = rng.uniform(w * 0.3, w * 0.7)
        for side in (-0.5, 0.5):
            col = center + side * gap
            draw_line(canvas, rng.uniform(0.3, 0.5) * h, col, h * 1.05,
                      col + rng.uniform(-3, 3), value,
                      thickness=rng.uniform(2.0, w / 12))
    elif kind == 1:  # blob over box ~ head over torso
        center = rng.uniform(w * 0.3, w * 0.7)
        head_row = rng.uniform(0.15, 0.3) * h
        radius = rng.uniform(3, w / 8)
        fill_ellipse(canvas, head_row, center, radius * 1.2, radius, value)
        fill_rectangle(canvas, head_row + radius * 1.5,
                       center - w * rng.uniform(0.1, 0.2),
                       rng.uniform(0.25, 0.45) * h,
                       w * rng.uniform(0.2, 0.4), value)
    elif kind == 2:  # trunk with stubs
        col = rng.uniform(w * 0.3, w * 0.7)
        draw_line(canvas, -0.05 * h, col, h * 1.05, col + rng.uniform(-4, 4),
                  value, thickness=rng.uniform(3.0, w / 8))
        for _ in range(int(rng.integers(1, 4))):
            row = rng.uniform(0.1, 0.6) * h
            draw_line(canvas, row, col, row + rng.uniform(-10, 10),
                      col + rng.uniform(-0.4, 0.4) * w, value,
                      thickness=rng.uniform(1.5, 3.5))
    else:  # scrambled figure: person-like parts, wrong global arrangement
        for _ in range(int(rng.integers(3, 6))):
            part = rng.integers(0, 3)
            row = rng.uniform(0.05, 0.9) * h
            col = rng.uniform(0.1, 0.9) * w
            shade = float(np.clip(value + rng.uniform(-0.05, 0.05), 0, 1))
            if part == 0:  # head-like blob
                r = rng.uniform(3, h * 0.06)
                fill_ellipse(canvas, row, col, r * 1.15, r, shade)
            elif part == 1:  # limb-like stroke
                length = rng.uniform(0.2, 0.45) * h
                angle = rng.uniform(-0.5, 0.5)
                draw_line(canvas, row, col,
                          row + length * np.cos(angle),
                          col + length * np.sin(angle), shade,
                          thickness=rng.uniform(2.0, h * 0.05))
            else:  # torso-like slab
                fill_rectangle(canvas, row, col - w * 0.12,
                               rng.uniform(0.15, 0.3) * h,
                               rng.uniform(0.2, 0.35) * w, shade)


def negative_window(
    rng: np.random.Generator,
    height: int = 128,
    width: int = 64,
    *,
    max_clutter: int = 7,
    noise_sigma: float | None = None,
    confuser_probability: float = 0.3,
) -> np.ndarray:
    """A pedestrian-free window: texture + clutter + sensor noise.

    Mirrors the INRIA protocol of sampling negative windows at random
    from person-free images [3]: each call draws a fresh texture and an
    independent amount of clutter (possibly none — open road).  A
    fraction of windows additionally contains a pedestrian *confuser*
    structure, the analogue of INRIA's hard negatives (poles, trees,
    street furniture).
    """
    canvas = textured_background(rng, height, width)
    n_items = int(rng.integers(0, max_clutter + 1))
    add_clutter(canvas, rng, n_items)
    if rng.random() < confuser_probability:
        _pedestrian_confuser(canvas, rng, contrast=0.35)
    canvas = gaussian_blur(canvas, sigma=float(rng.uniform(0.5, 1.4)))
    if noise_sigma is None:
        noise_sigma = float(rng.uniform(0.02, 0.06))
    canvas += rng.normal(0.0, noise_sigma, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)
