"""Full-frame street scenes with ground-truth pedestrian boxes.

The paper's accelerator processes HDTV (1080x1920) frames; these scene
generators produce frames of any size with pedestrians planted at
chosen heights (i.e. distances), so the multi-scale detectors can be
exercised end to end and scored against ground truth.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dataset.background import add_clutter, textured_background
from repro.dataset.pedestrian import render_pedestrian, sample_appearance
from repro.errors import ParameterError
from repro.imgproc.draw import alpha_blend_region, fill_rectangle
from repro.imgproc.filters import gaussian_blur


@dataclasses.dataclass(frozen=True)
class GroundTruthBox:
    """A planted pedestrian's window-aligned bounding box (pixels)."""

    top: int
    left: int
    height: int
    width: int

    @property
    def bottom(self) -> int:
        return self.top + self.height

    @property
    def right(self) -> int:
        return self.left + self.width

    @property
    def center(self) -> tuple[float, float]:
        return self.top + self.height / 2.0, self.left + self.width / 2.0


@dataclasses.dataclass
class Scene:
    """A rendered frame plus its ground truth.

    ``labels`` parallels ``boxes`` with one class name per box; single-
    class scenes fill it with ``"pedestrian"``.
    """

    image: np.ndarray
    boxes: list[GroundTruthBox]
    labels: list[str] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.labels:
            self.labels = ["pedestrian"] * len(self.boxes)

    def boxes_of(self, label: str) -> list[GroundTruthBox]:
        """Ground-truth boxes of one class."""
        return [b for b, lab in zip(self.boxes, self.labels) if lab == label]


def _road_backdrop(rng: np.random.Generator, height: int, width: int) -> np.ndarray:
    """Sky / buildings / road composition with clutter."""
    canvas = textured_background(rng, height, width, base_level=0.62)
    horizon = int(height * rng.uniform(0.35, 0.5))
    fill_rectangle(canvas, horizon, 0, height - horizon, width,
                   float(rng.uniform(0.3, 0.45)), alpha=0.85)
    add_clutter(canvas, rng, n_items=max(3, (height * width) // 60000))
    return gaussian_blur(canvas, sigma=0.6)


def make_street_scene(
    rng: np.random.Generator,
    height: int = 480,
    width: int = 640,
    n_pedestrians: int = 3,
    *,
    pedestrian_heights: tuple[int, int] | None = None,
    margin: int = 4,
) -> Scene:
    """Render a street scene with ``n_pedestrians`` planted figures.

    Parameters
    ----------
    pedestrian_heights:
        Inclusive ``(min, max)`` pixel range for the planted *window*
        heights (the figure spans ~75 % of its window, as in training).
        Defaults to 128 up to half the frame height, i.e. scales from
        1.0 upward relative to the 64x128 training window.
    margin:
        Minimum distance from the frame border, in pixels.

    Returns
    -------
    A :class:`Scene` whose boxes are the planted windows (not the tight
    figure outlines), matching what a window classifier should fire on.
    """
    if n_pedestrians < 0:
        raise ParameterError(f"n_pedestrians must be >= 0, got {n_pedestrians}")
    if pedestrian_heights is None:
        pedestrian_heights = (128, max(128, height // 2))
    lo, hi = pedestrian_heights
    if lo < 16 or hi < lo:
        raise ParameterError(
            f"pedestrian_heights must satisfy 16 <= lo <= hi, got {pedestrian_heights}"
        )

    canvas = _road_backdrop(rng, height, width)
    boxes: list[GroundTruthBox] = []
    attempts = 0
    while len(boxes) < n_pedestrians and attempts < n_pedestrians * 20:
        attempts += 1
        win_h = int(rng.integers(lo, hi + 1))
        win_h -= win_h % 2
        win_w = win_h // 2
        if win_h > height - 2 * margin or win_w > width - 2 * margin:
            continue
        top = int(rng.integers(margin, height - win_h - margin + 1))
        left = int(rng.integers(margin, width - win_w - margin + 1))
        candidate = GroundTruthBox(top=top, left=left, height=win_h, width=win_w)
        if any(_overlaps(candidate, b) for b in boxes):
            continue
        patch, _ = render_pedestrian(
            rng, win_h, win_w, appearance=sample_appearance(rng), with_clutter=False
        )
        # Blend softly so the window border does not become an edge cue.
        alpha_blend_region(canvas, patch, top, left, alpha=0.92)
        boxes.append(candidate)

    canvas = gaussian_blur(canvas, sigma=0.5)
    canvas += rng.normal(0.0, 0.015, size=canvas.shape)
    return Scene(image=np.clip(canvas, 0.0, 1.0), boxes=boxes)


def make_traffic_scene(
    rng: np.random.Generator,
    height: int = 480,
    width: int = 640,
    n_pedestrians: int = 2,
    n_vehicles: int = 2,
    *,
    pedestrian_heights: tuple[int, int] | None = None,
    vehicle_heights: tuple[int, int] | None = None,
    margin: int = 4,
) -> Scene:
    """A scene containing both object classes the architecture targets.

    Pedestrian boxes keep the 1:2 portrait window; vehicle boxes use the
    2:1 landscape window of :data:`repro.dataset.vehicle
    .VEHICLE_HOG_PARAMETERS`.  Boxes never overlap across classes.
    """
    # Imported here: vehicle.py imports from this module's siblings.
    from repro.dataset.vehicle import render_vehicle

    if n_pedestrians < 0 or n_vehicles < 0:
        raise ParameterError("object counts must be >= 0")
    if pedestrian_heights is None:
        pedestrian_heights = (128, max(128, height // 2))
    if vehicle_heights is None:
        vehicle_heights = (64, max(64, height // 4))

    canvas = _road_backdrop(rng, height, width)
    boxes: list[GroundTruthBox] = []
    labels: list[str] = []

    def try_place(label: str, lo: int, hi: int, aspect: float) -> bool:
        """aspect = width / height of the window."""
        win_h = int(rng.integers(lo, hi + 1))
        win_h -= win_h % 2
        win_w = int(win_h * aspect)
        if win_h > height - 2 * margin or win_w > width - 2 * margin:
            return False
        top = int(rng.integers(margin, height - win_h - margin + 1))
        left = int(rng.integers(margin, width - win_w - margin + 1))
        box = GroundTruthBox(top=top, left=left, height=win_h, width=win_w)
        if any(_overlaps(box, b) for b in boxes):
            return False
        if label == "pedestrian":
            patch, _ = render_pedestrian(rng, win_h, win_w, with_clutter=False)
        else:
            patch = render_vehicle(rng, win_h, win_w)
        alpha_blend_region(canvas, patch, top, left, alpha=0.92)
        boxes.append(box)
        labels.append(label)
        return True

    targets = [("vehicle", *vehicle_heights, 2.0)] * n_vehicles + [
        ("pedestrian", *pedestrian_heights, 0.5)
    ] * n_pedestrians
    for label, lo, hi, aspect in targets:
        for _ in range(20):
            if try_place(label, lo, hi, aspect):
                break

    canvas = gaussian_blur(canvas, sigma=0.5)
    canvas += rng.normal(0.0, 0.015, size=canvas.shape)
    return Scene(image=np.clip(canvas, 0.0, 1.0), boxes=boxes, labels=labels)


def _overlaps(a: GroundTruthBox, b: GroundTruthBox) -> bool:
    """True if the boxes intersect at all (planting keeps figures apart)."""
    return not (
        a.bottom <= b.top
        or b.bottom <= a.top
        or a.right <= b.left
        or b.right <= a.left
    )
