"""Window-classification accuracy — the quantities of Table 1.

The paper reports, per scale and per method: detection accuracy (the
fraction of all 5656 test windows classified correctly), the number of
true positives (pedestrian windows detected) and true negatives
(background windows rejected).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError


@dataclasses.dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    true_positive: int
    true_negative: int
    false_positive: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.true_negative
            + self.false_positive
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def true_positive_rate(self) -> float:
        pos = self.true_positive + self.false_negative
        return self.true_positive / pos if pos else 0.0

    @property
    def false_positive_rate(self) -> float:
        neg = self.true_negative + self.false_positive
        return self.false_positive / neg if neg else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.true_positive_rate


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    """Table 1 row: accuracy (percent) plus raw counts."""

    counts: ConfusionCounts

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * self.counts.accuracy

    @property
    def true_positives(self) -> int:
        return self.counts.true_positive

    @property
    def true_negatives(self) -> int:
        return self.counts.true_negative


def evaluate_scores(
    scores: np.ndarray,
    labels: np.ndarray,
    threshold: float = 0.0,
) -> AccuracyReport:
    """Score-threshold classification against binary labels.

    Parameters
    ----------
    scores:
        ``(N,)`` SVM decision values.
    labels:
        ``(N,)`` ground truth; 1 = pedestrian, 0 = background.
    threshold:
        Windows with ``score > threshold`` are predicted positive
        (paper equations (5)-(6) with an adjustable operating point).
    """
    s = np.asarray(scores, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel()
    if s.size != y.size:
        raise ShapeError(f"{s.size} scores for {y.size} labels")
    if s.size and not np.all(np.isin(y, (0, 1))):
        raise ShapeError("labels must be 0 or 1")
    predicted = s > threshold
    actual = y == 1
    counts = ConfusionCounts(
        true_positive=int(np.sum(predicted & actual)),
        true_negative=int(np.sum(~predicted & ~actual)),
        false_positive=int(np.sum(predicted & ~actual)),
        false_negative=int(np.sum(~predicted & actual)),
    )
    return AccuracyReport(counts=counts)
