"""Matching full-frame detections against ground-truth boxes.

Used by scene-level examples and tests: a detection matches a ground
truth box if their IoU exceeds a threshold; each ground truth can be
claimed by at most one detection (greedy, by score).
"""

from __future__ import annotations

import dataclasses

from repro.dataset.scene import GroundTruthBox
from repro.detect.nms import box_iou
from repro.detect.types import Detection
from repro.errors import ParameterError


@dataclasses.dataclass
class DetectionMatchResult:
    """Scene-level matching outcome."""

    matched: list[tuple[Detection, GroundTruthBox]]
    unmatched_detections: list[Detection]
    missed_ground_truth: list[GroundTruthBox]

    @property
    def recall(self) -> float:
        total = len(self.matched) + len(self.missed_ground_truth)
        return len(self.matched) / total if total else 1.0

    @property
    def precision(self) -> float:
        total = len(self.matched) + len(self.unmatched_detections)
        return len(self.matched) / total if total else 1.0


def _as_detection(box: GroundTruthBox) -> Detection:
    return Detection(
        top=box.top,
        left=box.left,
        height=box.height,
        width=box.width,
        score=0.0,
        scale=1.0,
    )


def match_detections(
    detections: list[Detection],
    ground_truth: list[GroundTruthBox],
    iou_threshold: float = 0.5,
) -> DetectionMatchResult:
    """Greedy one-to-one matching by descending detection score."""
    if not 0.0 < iou_threshold <= 1.0:
        raise ParameterError(
            f"iou_threshold must be in (0, 1], got {iou_threshold}"
        )
    gt_boxes = [(_as_detection(g), g) for g in ground_truth]
    available = list(range(len(gt_boxes)))
    matched = []
    unmatched = []
    for det in sorted(detections, key=lambda d: d.score, reverse=True):
        best_iou = 0.0
        best_idx = None
        for i in available:
            iou = box_iou(det, gt_boxes[i][0])
            if iou > best_iou:
                best_iou = iou
                best_idx = i
        if best_idx is not None and best_iou >= iou_threshold:
            matched.append((det, gt_boxes[best_idx][1]))
            available.remove(best_idx)
        else:
            unmatched.append(det)
    missed = [gt_boxes[i][1] for i in available]
    return DetectionMatchResult(
        matched=matched,
        unmatched_detections=unmatched,
        missed_ground_truth=missed,
    )
