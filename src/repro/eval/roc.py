"""Receiver operating characteristic analysis (Figure 4).

The paper plots ROC curves for both scaling methods and summarizes each
with the Area Under the Curve (AUC; ideal 1.0) and the Equal Error Rate
(EER; the error where false-positive and false-negative rates cross).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError


@dataclasses.dataclass(frozen=True)
class RocCurve:
    """A full ROC curve with its scalar summaries."""

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray
    auc: float
    eer: float

    def sample(self, n_points: int) -> tuple[np.ndarray, np.ndarray]:
        """Evenly resampled (fpr, tpr) pairs for compact plotting/printing."""
        fpr_grid = np.linspace(0.0, 1.0, n_points)
        tpr_grid = np.interp(fpr_grid, self.false_positive_rate,
                             self.true_positive_rate)
        return fpr_grid, tpr_grid


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    s = np.asarray(scores, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel()
    if s.size != y.size:
        raise ShapeError(f"{s.size} scores for {y.size} labels")
    if s.size == 0:
        raise ShapeError("cannot build a ROC curve from zero samples")
    if not np.all(np.isin(y, (0, 1))):
        raise ShapeError("labels must be 0 or 1")
    if y.sum() == 0 or y.sum() == y.size:
        raise ShapeError("ROC needs both positive and negative samples")
    return s, y


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> RocCurve:
    """Sweep the decision threshold and trace (FPR, TPR).

    The curve starts at (0, 0) (threshold above every score) and ends at
    (1, 1).  Tied scores collapse into single curve points, as standard.
    """
    s, y = _validate(scores, labels)
    order = np.argsort(-s, kind="stable")
    s_sorted = s[order]
    y_sorted = y[order]

    # Cumulative hits and false alarms as the threshold drops past each
    # distinct score value.
    distinct = np.nonzero(np.diff(s_sorted))[0]
    cut = np.concatenate([distinct, [s_sorted.size - 1]])
    tp = np.cumsum(y_sorted)[cut]
    fp = np.cumsum(1 - y_sorted)[cut]

    n_pos = int(y.sum())
    n_neg = int(y.size - n_pos)
    tpr = np.concatenate([[0.0], tp / n_pos])
    fpr = np.concatenate([[0.0], fp / n_neg])
    thresholds = np.concatenate([[np.inf], s_sorted[cut]])

    auc = float(np.trapezoid(tpr, fpr))
    eer = _eer_from_curve(fpr, tpr)
    return RocCurve(
        false_positive_rate=fpr,
        true_positive_rate=tpr,
        thresholds=thresholds,
        auc=auc,
        eer=eer,
    )


def _eer_from_curve(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Interpolated rate where FPR equals FNR (= 1 - TPR)."""
    fnr = 1.0 - tpr
    diff = fpr - fnr  # monotonically non-decreasing along the curve
    idx = int(np.searchsorted(diff, 0.0))
    if idx == 0:
        return float(fpr[0])
    if idx >= diff.size:
        return float(fpr[-1])
    d0, d1 = diff[idx - 1], diff[idx]
    if d1 == d0:
        return float((fpr[idx - 1] + fnr[idx - 1]) / 2.0)
    t = -d0 / (d1 - d0)
    eer_fpr = fpr[idx - 1] + t * (fpr[idx] - fpr[idx - 1])
    eer_fnr = fnr[idx - 1] + t * (fnr[idx] - fnr[idx - 1])
    return float((eer_fpr + eer_fnr) / 2.0)


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (ideal classifier: 1.0)."""
    return roc_curve(scores, labels).auc


def equal_error_rate(scores: np.ndarray, labels: np.ndarray) -> float:
    """The operating error rate where FPR and FNR are equal."""
    return roc_curve(scores, labels).eer
