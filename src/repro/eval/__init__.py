"""Evaluation: classification accuracy (Table 1) and ROC analysis (Figure 4)."""

from repro.eval.accuracy import ConfusionCounts, AccuracyReport, evaluate_scores
from repro.eval.roc import RocCurve, roc_curve, roc_auc, equal_error_rate
from repro.eval.matching import match_detections, DetectionMatchResult
from repro.eval.report import format_table, format_float

__all__ = [
    "ConfusionCounts",
    "AccuracyReport",
    "evaluate_scores",
    "RocCurve",
    "roc_curve",
    "roc_auc",
    "equal_error_rate",
    "match_detections",
    "DetectionMatchResult",
    "format_table",
    "format_float",
]
