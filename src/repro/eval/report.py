"""Plain-text table formatting for benches and examples."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ParameterError


def format_float(value: float, decimals: int = 4) -> str:
    """Fixed-decimal rendering used across all printed tables."""
    return f"{value:.{decimals}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Every row must have exactly ``len(headers)`` entries; values are
    stringified with ``str`` (format floats beforehand for fixed
    decimals).
    """
    cols = len(headers)
    str_rows = []
    for row in rows:
        if len(row) != cols:
            raise ParameterError(
                f"row {row!r} has {len(row)} entries, expected {cols}"
            )
        str_rows.append([str(v) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
