"""Generate docs/CLI.md from the live ``repro-das`` argparse tree.

Same contract as the telemetry name table
(:mod:`repro.telemetry.names`): the reference lives between marker
comments in the docs page, ``repro-das docs --write`` regenerates it,
``repro-das docs --check`` fails CI when the page and the parser
disagree.  Because the source of truth *is* :func:`repro.cli.
build_parser`, adding a flag without regenerating the page is a
build failure, not silent drift.

The rendering walks public argparse state only through each
subparser's registered actions — option strings, metavars, defaults,
choices, help — and is deterministic (declaration order) so the check
can be plain string equality.
"""

from __future__ import annotations

import argparse
from pathlib import Path

#: Marker comments delimiting the generated block in docs/CLI.md.
CLI_BEGIN = "<!-- cli-reference:begin -->"
CLI_END = "<!-- cli-reference:end -->"


def _subparsers(
    parser: argparse.ArgumentParser,
) -> list[tuple[str, argparse.ArgumentParser]]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return list(action.choices.items())
    return []


def _option_cell(action: argparse.Action) -> str:
    if not action.option_strings:
        name = action.metavar or action.dest
        if action.nargs in ("*", "+"):
            name = f"{name} ..."
        return f"`{name}`"
    flag = ", ".join(action.option_strings)
    if isinstance(action, (argparse._StoreTrueAction,
                           argparse._StoreFalseAction)):
        return f"`{flag}`"
    metavar = action.metavar or action.dest.upper()
    if isinstance(metavar, tuple):
        metavar = " ".join(metavar)
    if action.nargs in ("*", "+"):
        metavar = f"{metavar} ..."
    elif action.nargs == "?":
        metavar = f"[{metavar}]"
    return f"`{flag} {metavar}`"


def _default_cell(action: argparse.Action) -> str:
    optional_positional = (not action.option_strings
                           and action.nargs in ("*", "?"))
    if action.required and not optional_positional:
        return "required"
    default = action.default
    if default is None or default is argparse.SUPPRESS:
        return "—"
    if isinstance(action, (argparse._StoreTrueAction,
                           argparse._StoreFalseAction)):
        return "off" if not default else "on"
    if isinstance(default, (list, tuple)):
        return "`" + " ".join(str(item) for item in default) + "`"
    return f"`{default}`"


def _help_cell(action: argparse.Action) -> str:
    text = " ".join((action.help or "").split())
    if action.choices is not None:
        rendered = " / ".join(f"`{c}`" for c in action.choices)
        suffix = f"one of {rendered}"
        text = f"{text} ({suffix})" if text else suffix
    return text.replace("|", "\\|") or "—"


def render_cli_reference() -> str:
    """The Markdown reference block for every ``repro-das`` subcommand."""
    from repro.cli import build_parser

    parser = build_parser()
    lines = [
        "Generated from `repro.cli.build_parser()` by "
        "`repro-das docs --write`; do not edit between the markers.",
        "",
    ]
    entries = _subparsers(parser)
    for name, sub in entries:
        lines.append(f"- [`repro-das {name}`](#repro-das-{name})")
    lines.append("")
    for name, sub in entries:
        lines.append(f"### `repro-das {name}`")
        lines.append("")
        usage = " ".join(sub.format_usage().split())
        if usage.startswith("usage: "):
            usage = usage[len("usage: "):]
        lines.append("```text")
        lines.append(usage)
        lines.append("```")
        lines.append("")
        summary = " ".join((sub.description or "").split())
        if summary:
            lines.append(summary)
            lines.append("")
        actions = [
            action for action in sub._actions
            if not isinstance(action, argparse._HelpAction)
        ]
        if actions:
            lines.append("| Argument | Default | Description |")
            lines.append("| --- | --- | --- |")
            for action in actions:
                lines.append(
                    f"| {_option_cell(action)} "
                    f"| {_default_cell(action)} "
                    f"| {_help_cell(action)} |"
                )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _find_block(text: str) -> tuple[int, int]:
    begin = text.find(CLI_BEGIN)
    end = text.find(CLI_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"docs page lacks the {CLI_BEGIN} / {CLI_END} marker pair"
        )
    return begin, end


def docs_problems(text: str) -> list[str]:
    """Why ``text`` disagrees with the live parser tree, if it does."""
    try:
        begin, end = _find_block(text)
    except ValueError as exc:
        return [str(exc)]
    embedded = text[begin + len(CLI_BEGIN):end].strip("\n")
    expected = render_cli_reference().strip("\n")
    if embedded != expected:
        return [
            "CLI reference is stale; regenerate with "
            "`PYTHONPATH=src python -m repro.cli docs --write`"
        ]
    return []


def write_cli_reference(path: Path) -> bool:
    """Replace the generated block in ``path``; True if it changed."""
    text = path.read_text(encoding="utf-8")
    begin, end = _find_block(text)
    updated = (
        text[:begin + len(CLI_BEGIN)]
        + "\n" + render_cli_reference()
        + text[end:]
    )
    if updated == text:
        return False
    path.write_text(updated, encoding="utf-8")
    return True


def default_docs_path() -> Path:
    # src/repro/cli_docs.py -> repo root is two parents up.
    return Path(__file__).resolve().parents[2] / "docs" / "CLI.md"
