"""Command-line interface.

Ten subcommands cover the everyday flows (full reference: docs/CLI.md,
generated from this parser by ``repro-das docs --write``)::

    repro-das train    --out model.npz [--seed 0] [--bootstrap]
    repro-das detect   --model model.npz [--scene-seed 0] [--threshold 0.5]
    repro-das evaluate --model model.npz [--scale 1.3] [--method hog|image]
    repro-das report   --what timing|resources|stopping
    repro-das profile  [--model model.npz] [--frames 3] [--format json|text]
                       [--workers 2] [--backend thread|process]
    repro-das stream   [--frames 60] [--workers 2] [--policy block] [--json]
                       [--backend thread|process]
    repro-das serve    [--host 127.0.0.1] [--port 8787] [--workers 2]
                       [--policy block] [--max-pending 8] [--max-fps N]
                       [--max-batch 1] [--batch-window-ms 0]
                       [--keep-alive] [--auth-token TOKEN]
    repro-das lint     [paths ...] [--format text|json] [--rules a,b]
    repro-das names    [--write [PATH]] [--check [PATH]]
    repro-das docs     [--write [PATH]] [--check [PATH]]

``train`` fits a pedestrian model on the synthetic dataset; ``detect``
renders a street scene and runs the feature-pyramid detector;
``evaluate`` reruns the Figure 3 protocol at one scale; ``report``
prints the hardware timing / resource / DAS-kinematics summaries;
``profile`` runs frames through the telemetry-instrumented pipeline and
emits the per-stage cost report (gradient / histogram / normalize /
scale / classify / nms timings plus per-scale window counters — see
docs/TELEMETRY.md and docs/PERFORMANCE.md); ``stream`` runs a synthetic
video through the bounded-queue streaming pipeline (``repro.stream``)
with per-frame fault isolation and feeds the in-order results to the
IoU tracker — see docs/STREAMING.md.  Both ``profile`` and ``stream``
accept ``--backend process`` to run detection in the shared-memory
process pool of ``repro.parallel`` instead of worker threads (worker
telemetry is merged back into the printed report), and ``--scorer
conv|conv-cascade|gemm`` to select the window-scoring strategy (the
partial-score convolution of ``repro.detect.scoring``, the default;
its staged early-reject cascade, tuned by ``--cascade-k``; or the
descriptor-matrix reference path).  Images can also be supplied as
``.npy`` arrays via ``--image``.  ``serve`` starts the
detection-as-a-service HTTP front end of :mod:`repro.serve` (concurrent
client sessions over shared warm pools, ``/metrics`` in Prometheus
format — see docs/SERVING.md); it drains gracefully on SIGINT/SIGTERM,
coalesces dispatches with ``--max-batch``/``--batch-window-ms``, and
serves persistent connections with ``--keep-alive``.
``lint`` runs the project's static analysis rules (:mod:`repro.analysis`,
see docs/ANALYSIS.md) and exits non-zero on findings — the same
invocation CI enforces.  ``names`` renders or syncs the canonical
telemetry name table (docs/TELEMETRY.md) and ``docs`` does the same for
the generated CLI reference (docs/CLI.md); both ``--check`` modes are
CI gates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.detect.scoring import DEFAULT_CASCADE_K, SCORERS
from repro.stream.types import BACKENDS

#: ``--write`` / ``--check`` given without a path: use the page's
#: canonical location (docs/TELEMETRY.md or docs/CLI.md).
_DEFAULT_SENTINEL = "<default>"


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import bootstrap_train
    from repro.core.experiments import train_window_model
    from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
    from repro.dataset.background import negative_window

    sizes = DatasetSizes(
        train_positive=args.train_pos,
        train_negative=args.train_neg,
        test_positive=1,
        test_negative=1,
    )
    dataset = SyntheticPedestrianDataset(seed=args.seed, sizes=sizes)
    print(f"Training on {args.train_pos} positive / {args.train_neg} "
          f"negative synthetic windows (seed {args.seed})...")
    if args.bootstrap:
        rng = np.random.default_rng(args.seed + 1)
        scenes = [negative_window(rng, 256, 320) for _ in range(8)]
        result = bootstrap_train(dataset.train_windows(), scenes,
                                 max_rounds=2)
        model = result.model
        print(f"Bootstrapping mined {result.total_added} hard negatives "
              f"over {result.rounds} round(s).")
    else:
        model, _ = train_window_model(dataset.train_windows())
    model.save(args.out)
    print(f"Model written to {args.out} "
          f"({model.n_features} weights, bias {model.bias:+.4f}).")
    return 0


def _load_image(args: argparse.Namespace):
    from repro.dataset import SyntheticPedestrianDataset

    if args.image is not None:
        image = np.load(args.image)
        return image, None
    dataset = SyntheticPedestrianDataset(seed=args.scene_seed)
    scene = dataset.make_scene(
        height=args.height, width=args.width, n_pedestrians=args.pedestrians,
        scene_index=args.scene_seed,
    )
    return scene.image, scene


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core import DetectorConfig, MultiScalePedestrianDetector
    from repro.eval import match_detections

    scales = tuple(args.scales)
    detector = MultiScalePedestrianDetector.load_model(
        args.model,
        DetectorConfig(scales=scales, threshold=args.threshold,
                       chained_pyramid=False),
    )
    image, scene = _load_image(args)
    result = detector.detect(image)
    print(f"{len(result.detections)} detections "
          f"({result.n_windows_evaluated} windows, scales "
          f"{[round(s, 2) for s in result.scales_used]}):")
    for d in result.detections:
        print(f"  top={d.top:7.1f} left={d.left:7.1f} "
              f"{d.height:.0f}x{d.width:.0f}px score={d.score:+.3f} "
              f"scale={d.scale:.2f}")
    if scene is not None and scene.boxes:
        match = match_detections(result.detections, scene.boxes)
        print(f"ground truth: {len(scene.boxes)} pedestrians -> "
              f"recall {match.recall:.2f}, precision {match.precision:.2f}")
    t = result.timings
    print(f"timings: extract {t.extraction * 1e3:.0f} ms, pyramid "
          f"{t.pyramid * 1e3:.0f} ms, classify "
          f"{t.classification * 1e3:.0f} ms")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.experiments import run_scaling_experiment
    from repro.dataset import DatasetSizes, SyntheticPedestrianDataset

    sizes = DatasetSizes().scaled(args.fraction)
    dataset = SyntheticPedestrianDataset(seed=args.seed, sizes=sizes)
    print(f"Figure 3 protocol at scale {args.scale} on "
          f"{sizes.test_positive}+{sizes.test_negative} test windows...")
    experiment = run_scaling_experiment(dataset, scales=(args.scale,))
    print(experiment.table1().format())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.what == "timing":
        from repro.hardware import FrameTimingModel

        model = FrameTimingModel()
        report = model.frame_report(scales=(1.0, 1.2))
        t1 = model.scale_timing(1.0)
        print(f"HDTV classifier cycles/frame: {t1.cycles:,} "
              f"({t1.cycles / model.clock_hz * 1e3:.2f} ms @125 MHz)")
        print(f"extractor cycles/frame:       {report.extractor_cycles:,}")
        print(f"frame interval:               "
              f"{report.frame_time_s * 1e3:.2f} ms "
              f"-> {report.frames_per_second:.2f} fps")
    elif args.what == "resources":
        from repro.hardware import ResourceEstimator, Zc7020

        usage = ResourceEstimator().total()
        util = usage.utilization(Zc7020)
        for field in ("lut", "ff", "lutram", "bram36", "dsp48", "bufg"):
            print(f"{field.upper():7s}: {getattr(usage, field):9.1f} "
                  f"({util[field]:5.1f} %)")
        print(f"fits {Zc7020.name}: {usage.fits(Zc7020)}")
    else:  # stopping
        from repro.das import StoppingScenario, detection_range_requirement

        for speed in (50.0, 70.0):
            s = StoppingScenario(speed)
            print(f"{speed:3.0f} km/h: braking {s.braking_distance_m:6.2f} m, "
                  f"stopping {s.total_stopping_distance_m:6.2f} m")
        lo, hi = detection_range_requirement()
        print(f"detection range requirement: {lo:.1f} .. {hi:.1f} m")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.core import DetectorConfig, MultiScalePedestrianDetector
    from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
    from repro.hardware.event_sim import PipelineConfig, simulate_frame
    from repro.telemetry import render_text, stage_report

    config = DetectorConfig(
        scales=tuple(args.scales),
        threshold=args.threshold,
        stride=args.stride,
        scorer=args.scorer,
        cascade_k=args.cascade_k,
        telemetry=True,
        arena=args.arena,
    )
    if args.model is not None:
        detector = MultiScalePedestrianDetector.load_model(args.model, config)
    else:
        # No model given: fit a small throwaway model so the profile is
        # one self-contained command (status on stderr keeps stdout a
        # clean JSON document).
        print("no --model given; training a small synthetic model...",
              file=sys.stderr)
        sizes = DatasetSizes(
            train_positive=60, train_negative=120,
            test_positive=1, test_negative=1,
        )
        dataset = SyntheticPedestrianDataset(seed=args.scene_seed, sizes=sizes)
        detector = MultiScalePedestrianDetector.train(
            dataset.train_windows(), config
        )

    if args.image is not None:
        frames = [np.load(args.image)] * args.frames
    else:
        dataset = SyntheticPedestrianDataset(seed=args.scene_seed)
        frames = [
            dataset.make_scene(
                height=args.height, width=args.width,
                n_pedestrians=args.pedestrians, scene_index=i,
            ).image
            for i in range(args.frames)
        ]
    if args.workers > 1 or args.backend != "thread":
        # detect_batch closes its pipeline before returning, which is
        # what merges the worker processes' telemetry snapshots into
        # detector.telemetry — the report below then covers work done
        # in the workers, not just in this process.
        detector.detect_batch(
            frames, workers=args.workers, backend=args.backend
        )
    else:
        for frame in frames:
            detector.detect(frame)

    # Put the paper-configuration cycle model (HDTV, two scales) in the
    # same snapshot so the software split can be read against the
    # hardware budget (docs/PERFORMANCE.md).
    simulate_frame(PipelineConfig(), telemetry=detector.telemetry)

    snapshot = detector.snapshot()
    if args.format == "text":
        output = render_text(snapshot)
    else:
        report = stage_report(snapshot)
        report["frames"] = args.frames
        report["frame_shape"] = [int(frames[0].shape[0]),
                                 int(frames[0].shape[1])]
        report["backend"] = args.backend
        report["workers"] = args.workers
        report["scorer"] = args.scorer
        output = json.dumps(report, indent=2, sort_keys=True)
    print(output)
    if args.out is not None:
        args.out.write_text(output + "\n")
        print(f"profile written to {args.out}", file=sys.stderr)
    return 0


def _stream_detector(args, config):
    from repro.core import MultiScalePedestrianDetector
    from repro.dataset import DatasetSizes, SyntheticPedestrianDataset

    if args.model is not None:
        return MultiScalePedestrianDetector.load_model(args.model, config)
    print("no --model given; training a small synthetic model...",
          file=sys.stderr)
    sizes = DatasetSizes(
        train_positive=60, train_negative=120,
        test_positive=1, test_negative=1,
    )
    dataset = SyntheticPedestrianDataset(seed=args.scene_seed, sizes=sizes)
    return MultiScalePedestrianDetector.train(dataset.train_windows(), config)


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.core import DetectorConfig
    from repro.das import IouTracker
    from repro.errors import StreamError
    from repro.stream import StreamPipeline, SyntheticVideoSource
    from repro.telemetry import stage_report

    config = DetectorConfig(
        scales=tuple(args.scales),
        threshold=args.threshold,
        stride=args.stride,
        scorer=args.scorer,
        cascade_k=args.cascade_k,
        telemetry=True,
        arena=args.arena,
    )
    detector = _stream_detector(args, config)
    source = SyntheticVideoSource(
        args.frames,
        height=args.height,
        width=args.width,
        n_pedestrians=args.pedestrians,
        seed=args.scene_seed,
        scene_hold=args.scene_hold,
        corrupt_frames=args.corrupt_frame or (),
    )
    pipeline = StreamPipeline(
        detector,
        workers=args.workers,
        queue_size=args.queue_size,
        policy=args.policy,
        max_consecutive_failures=args.max_consecutive_failures,
        telemetry=detector.telemetry,
        backend=args.backend,
    )

    tracker = IouTracker()
    print(f"streaming {args.frames} synthetic frames "
          f"({args.height}x{args.width}) through {args.workers} "
          f"{args.backend} worker(s), policy {args.policy}...",
          file=sys.stderr)
    try:
        run = pipeline.run(
            source, on_result=lambda fr: tracker.consume([fr])
        )
    except StreamError as exc:
        print(f"stream aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        # Shut the process-backend pool down *before* the snapshot is
        # read: close() is what merges worker-side telemetry into
        # detector.telemetry (no-op for the thread backend).
        pipeline.close()
    report = run.report

    failures = [fr.to_dict() for fr in run.results if not fr.ok
                and fr.status.value == "failed"]
    document = {
        "frames": args.frames,
        "frame_shape": [args.height, args.width],
        "scorer": args.scorer,
        "stream": report.to_dict(),
        "failures": failures,
        "tracking": {
            "tracks_live": len(tracker.tracks),
            "tracks_confirmed": len(tracker.confirmed_tracks()),
        },
        "telemetry": stage_report(detector.snapshot()),
    }
    if args.json:
        output = json.dumps(document, indent=2, sort_keys=True)
        print(output)
        if args.out is not None:
            args.out.write_text(output + "\n")
            print(f"stream report written to {args.out}", file=sys.stderr)
        return 0

    print(f"frames: {report.frames_in} in -> {report.frames_ok} ok, "
          f"{report.frames_failed} failed, {report.frames_dropped} dropped")
    for f in failures:
        print(f"  frame {f['index']} failed: {f['error']}")
    print(f"throughput: {report.achieved_fps:.1f} fps over "
          f"{report.elapsed_s * 1e3:.0f} ms "
          f"({report.workers} worker(s), utilization "
          f"{report.worker_utilization * 100:.0f} %)")
    print(f"latency: p50 {report.latency_p50_ms:.1f} ms, "
          f"p95 {report.latency_p95_ms:.1f} ms, "
          f"max {report.latency_max_ms:.1f} ms")
    print(f"queue depth: max {report.queue_depth_max:.0f}, "
          f"mean {report.queue_depth_mean:.1f} (size {args.queue_size})")
    print(f"tracking: {len(tracker.tracks)} live track(s), "
          f"{len(tracker.confirmed_tracks())} confirmed")
    if args.out is not None:
        args.out.write_text(json.dumps(document, indent=2, sort_keys=True)
                            + "\n")
        print(f"stream report written to {args.out}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core import DetectorConfig

    config = DetectorConfig(
        scales=tuple(args.scales),
        threshold=args.threshold,
        stride=args.stride,
        scorer=args.scorer,
        cascade_k=args.cascade_k,
        telemetry=True,
        arena=args.arena,
    )
    detector = _stream_detector(args, config)
    return asyncio.run(_serve_async(args, detector))


async def _serve_async(args: argparse.Namespace, detector) -> int:
    import asyncio
    import signal

    from repro.serve import DetectionService, start_http_server

    service = DetectionService(
        detector,
        workers=args.workers,
        backend=args.backend,
        default_policy=args.policy,
        max_pending=args.max_pending,
        max_fps=args.max_fps,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        telemetry=detector.telemetry,
    )
    await service.start()
    app, host, port = await start_http_server(
        service, args.host, args.port,
        keep_alive=args.keep_alive, auth_token=args.auth_token,
    )
    print(f"serving on http://{host}:{port} "
          f"({args.workers} {args.backend} worker(s), policy "
          f"{args.policy}, max-pending {args.max_pending}, "
          f"max-batch {args.max_batch}, "
          f"keep-alive {'on' if args.keep_alive else 'off'})",
          file=sys.stderr, flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(sig)
    print("draining...", file=sys.stderr, flush=True)
    await app.stop()
    report = await service.shutdown(drain=True)
    print(f"drained {'clean' if report.drained_clean else 'DIRTY'}: "
          f"{report.frames_submitted} submitted -> "
          f"{report.frames_ok} ok, {report.frames_failed} failed, "
          f"{report.frames_dropped} dropped "
          f"({report.sessions_opened} session(s))",
          file=sys.stderr, flush=True)
    return 0 if report.drained_clean else 1


def _cmd_names(args: argparse.Namespace) -> int:
    from repro.telemetry import names as telemetry_names

    argv: list[str] = []
    if args.write is not None:
        argv.append("--write")
        if args.write != _DEFAULT_SENTINEL:
            argv.append(str(args.write))
    if args.check is not None:
        argv.append("--check")
        if args.check != _DEFAULT_SENTINEL:
            argv.append(str(args.check))
    return telemetry_names.main(argv)


def _cmd_docs(args: argparse.Namespace) -> int:
    from repro import cli_docs

    if args.write is not None:
        path = (cli_docs.default_docs_path()
                if args.write == _DEFAULT_SENTINEL else Path(args.write))
        changed = cli_docs.write_cli_reference(path)
        print(f"{path}: {'updated' if changed else 'already current'}")
        return 0
    if args.check is not None:
        path = (cli_docs.default_docs_path()
                if args.check == _DEFAULT_SENTINEL else Path(args.check))
        problems = cli_docs.docs_problems(
            path.read_text(encoding="utf-8")
        )
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1 if problems else 0
    print(cli_docs.render_cli_reference(), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        all_rule_classes,
        get_rules,
        iter_python_files,
        lint_paths,
        render_json_report,
        render_sarif_report,
        render_text_report,
    )
    from repro.errors import ParameterError

    if args.list_rules:
        for cls in all_rule_classes():
            print(f"{cls.name}: {cls.description}")
        return 0
    names = None
    if args.rules is not None:
        names = [n.strip() for n in args.rules.split(",") if n.strip()]
    try:
        rules = get_rules(names)
    except ParameterError as exc:
        print(f"repro-das lint: {exc}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("repro-das lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    paths = args.paths or [
        p for p in (Path("src"), Path("tests"), Path("benchmarks"))
        if p.is_dir()
    ]
    checked = len(iter_python_files(paths))
    findings = lint_paths(paths, rules=rules, root=args.root,
                          jobs=args.jobs)
    if args.format == "json":
        print(render_json_report(findings, rules=rules,
                                 checked_files=checked))
    elif args.format == "sarif":
        print(render_sarif_report(findings, rules=rules,
                                  checked_files=checked))
    else:
        print(render_text_report(findings, checked_files=checked))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-das`` argument parser (public for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-das",
        description="Multi-scale HOG+SVM pedestrian detection (DAC 2017 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a pedestrian model")
    train.add_argument("--out", type=Path, required=True,
                       help="output .npz model path")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--train-pos", type=int, default=300)
    train.add_argument("--train-neg", type=int, default=600)
    train.add_argument("--bootstrap", action="store_true",
                       help="run hard-negative mining rounds")
    train.set_defaults(func=_cmd_train)

    detect = sub.add_parser("detect", help="detect pedestrians in a frame")
    detect.add_argument("--model", type=Path, required=True)
    detect.add_argument("--image", type=Path, default=None,
                        help="optional .npy grayscale frame")
    detect.add_argument("--scene-seed", type=int, default=0)
    detect.add_argument("--height", type=int, default=480)
    detect.add_argument("--width", type=int, default=640)
    detect.add_argument("--pedestrians", type=int, default=3)
    detect.add_argument("--threshold", type=float, default=0.5)
    detect.add_argument("--scales", type=float, nargs="+",
                        default=[1.0, 1.2, 1.44])
    detect.set_defaults(func=_cmd_detect)

    evaluate = sub.add_parser("evaluate",
                              help="run the Figure 3 protocol at one scale")
    evaluate.add_argument("--scale", type=float, default=1.3)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--fraction", type=float, default=0.1,
                          help="fraction of the paper's test split size")
    evaluate.set_defaults(func=_cmd_evaluate)

    report = sub.add_parser("report", help="print model/hardware reports")
    report.add_argument("--what", choices=("timing", "resources", "stopping"),
                        default="timing")
    report.set_defaults(func=_cmd_report)

    profile = sub.add_parser(
        "profile",
        help="run frames through the instrumented pipeline and emit the "
        "per-stage telemetry report",
    )
    profile.add_argument("--model", type=Path, default=None,
                         help="trained .npz model (a small synthetic model "
                         "is trained when omitted)")
    profile.add_argument("--image", type=Path, default=None,
                         help="optional .npy grayscale frame")
    profile.add_argument("--scene-seed", type=int, default=0)
    profile.add_argument("--height", type=int, default=240)
    profile.add_argument("--width", type=int, default=320)
    profile.add_argument("--pedestrians", type=int, default=2)
    profile.add_argument("--frames", type=int, default=3,
                         help="frames to run (more frames -> stabler "
                         "p50/p95)")
    profile.add_argument("--threshold", type=float, default=0.5)
    profile.add_argument("--stride", type=int, default=1)
    profile.add_argument("--scorer", choices=SCORERS,
                         default="conv",
                         help="window-scoring strategy: the partial-score "
                         "convolution (conv, default), its staged "
                         "early-reject cascade (conv-cascade) or the "
                         "descriptor-matrix reference path (gemm)")
    profile.add_argument("--cascade-k", type=int, default=DEFAULT_CASCADE_K,
                         help="conv-cascade only: block positions "
                         "accumulated before the first rejection check")
    profile.add_argument("--arena", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="preallocate hot-path buffers in a per-detector "
                         "arena (docs/MEMORY.md); --no-arena reverts to "
                         "per-frame allocation")
    profile.add_argument("--scales", type=float, nargs="+",
                         default=[1.0, 1.2])
    profile.add_argument("--workers", type=int, default=1,
                         help="detection workers (>1 routes frames through "
                         "detect_batch)")
    profile.add_argument("--backend", choices=BACKENDS,
                         default="thread",
                         help="run workers as threads or as the "
                         "shared-memory process pool (repro.parallel); "
                         "worker telemetry is merged into the report")
    profile.add_argument("--format", choices=("json", "text"),
                         default="json")
    profile.add_argument("--out", type=Path, default=None,
                         help="also write the report to this path")
    profile.set_defaults(func=_cmd_profile)

    stream = sub.add_parser(
        "stream",
        help="run a synthetic video through the streaming pipeline "
        "(bounded queues, worker threads, per-frame fault isolation)",
    )
    stream.add_argument("--model", type=Path, default=None,
                        help="trained .npz model (a small synthetic model "
                        "is trained when omitted)")
    stream.add_argument("--frames", type=int, default=60,
                        help="length of the synthetic video")
    stream.add_argument("--workers", type=int, default=1,
                        help="detection workers")
    stream.add_argument("--backend", choices=BACKENDS,
                        default="thread",
                        help="run workers as threads (default) or as the "
                        "shared-memory process pool (repro.parallel) — "
                        "see docs/STREAMING.md for selection guidance")
    stream.add_argument("--queue-size", type=int, default=8,
                        help="frame intake queue capacity")
    stream.add_argument("--policy",
                        choices=("block", "drop-oldest", "drop-newest"),
                        default="block",
                        help="backpressure policy when the queue is full")
    stream.add_argument("--max-consecutive-failures", type=int, default=None,
                        help="circuit breaker: abort after this many "
                        "consecutive frame failures (default: disabled)")
    stream.add_argument("--corrupt-frame", type=int, action="append",
                        default=None, metavar="INDEX",
                        help="inject an all-NaN frame at INDEX (repeatable); "
                        "exercises per-frame fault isolation")
    stream.add_argument("--scene-seed", type=int, default=0)
    stream.add_argument("--scene-hold", type=int, default=5,
                        help="consecutive frames sharing one scene (gives "
                        "the tracker frame-to-frame coherence)")
    stream.add_argument("--height", type=int, default=240)
    stream.add_argument("--width", type=int, default=320)
    stream.add_argument("--pedestrians", type=int, default=2)
    stream.add_argument("--threshold", type=float, default=0.5)
    stream.add_argument("--stride", type=int, default=1)
    stream.add_argument("--scorer", choices=SCORERS,
                        default="conv",
                        help="window-scoring strategy: the partial-score "
                        "convolution (conv, default), its staged "
                        "early-reject cascade (conv-cascade) or the "
                        "descriptor-matrix reference path (gemm)")
    stream.add_argument("--cascade-k", type=int, default=DEFAULT_CASCADE_K,
                        help="conv-cascade only: block positions "
                        "accumulated before the first rejection check")
    stream.add_argument("--arena", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="preallocate hot-path buffers in a per-detector "
                        "arena (docs/MEMORY.md); --no-arena reverts to "
                        "per-frame allocation")
    stream.add_argument("--scales", type=float, nargs="+",
                        default=[1.0, 1.2])
    stream.add_argument("--json", action="store_true",
                        help="emit the full JSON report on stdout")
    stream.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report to this path")
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="start the detection-as-a-service HTTP front end "
        "(repro.serve): concurrent client sessions over shared warm "
        "pools, Prometheus /metrics — see docs/SERVING.md",
    )
    serve.add_argument("--model", type=Path, default=None,
                       help="trained .npz model (a small synthetic model "
                       "is trained when omitted)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port to bind (0 picks an ephemeral port, "
                       "printed on stderr)")
    serve.add_argument("--workers", type=int, default=2,
                       help="detection workers per pool")
    serve.add_argument("--backend", choices=BACKENDS,
                       default="thread",
                       help="run workers as threads (default) or as the "
                       "shared-memory process pool (repro.parallel)")
    serve.add_argument("--policy",
                       choices=("block", "drop-oldest", "drop-newest"),
                       default="block",
                       help="default per-session backpressure policy "
                       "(sessions may override at open)")
    serve.add_argument("--max-pending", type=int, default=8,
                       help="default per-session quota of admitted but "
                       "unemitted frames")
    serve.add_argument("--max-fps", type=float, default=None,
                       help="default per-session frames-per-second "
                       "admission cap (sessions may override at open; "
                       "default: uncapped)")
    serve.add_argument("--max-batch", type=int, default=1,
                       help="frames coalesced into one worker dispatch "
                       "(across sessions); 1 disables micro-batching")
    serve.add_argument("--batch-window-ms", type=float, default=0.0,
                       help="how long the dispatcher lingers for a "
                       "fuller batch before sending a partial one "
                       "(only with --max-batch > 1)")
    serve.add_argument("--keep-alive", action="store_true",
                       help="serve multiple HTTP requests per "
                       "connection (default: one request per "
                       "connection)")
    serve.add_argument("--auth-token", default=None,
                       help="require 'Authorization: Bearer <token>' "
                       "on /v1/* requests (probes and /metrics stay "
                       "open)")
    serve.add_argument("--scene-seed", type=int, default=0)
    serve.add_argument("--threshold", type=float, default=0.5)
    serve.add_argument("--stride", type=int, default=1)
    serve.add_argument("--scorer", choices=SCORERS,
                       default="conv",
                       help="window-scoring strategy: the partial-score "
                       "convolution (conv, default), its staged "
                       "early-reject cascade (conv-cascade) or the "
                       "descriptor-matrix reference path (gemm)")
    serve.add_argument("--cascade-k", type=int, default=DEFAULT_CASCADE_K,
                       help="conv-cascade only: block positions "
                       "accumulated before the first rejection check")
    serve.add_argument("--arena", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="preallocate hot-path buffers in a per-detector "
                       "arena (docs/MEMORY.md); --no-arena reverts to "
                       "per-frame allocation")
    serve.add_argument("--scales", type=float, nargs="+",
                       default=[1.0, 1.2])
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="run the project's static analysis rules (repro.analysis); "
        "exits 1 on findings",
    )
    lint.add_argument("paths", nargs="*", type=Path,
                      help="files or directories to lint (default: src, "
                      "tests and benchmarks, where present; per-directory "
                      "rule subsets are in repro.analysis.runner."
                      "RULE_COVERAGE)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (JSON schema: docs/ANALYSIS.md; "
                      "sarif emits SARIF 2.1.0 for code-scanning upload)")
    lint.add_argument("--rules", default=None, metavar="A,B",
                      help="comma-separated subset of rules to run "
                      "(default: all; see --list-rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--root", type=Path, default=None,
                      help="repo root anchoring display paths and the "
                      "docs/TELEMETRY.md cross-check (default: cwd)")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan the per-file pass out over N worker "
                      "processes (default: 1, in-process)")
    lint.set_defaults(func=_cmd_lint)

    names = sub.add_parser(
        "names",
        help="render or sync the canonical telemetry name table "
        "(docs/TELEMETRY.md); --check is the CI drift gate",
    )
    names.add_argument("--write", nargs="?", const=_DEFAULT_SENTINEL,
                       default=None, metavar="PATH",
                       help="regenerate the table between the markers "
                       "(default PATH: docs/TELEMETRY.md)")
    names.add_argument("--check", nargs="?", const=_DEFAULT_SENTINEL,
                       default=None, metavar="PATH",
                       help="exit 1 when the page disagrees with the "
                       "registry")
    names.set_defaults(func=_cmd_names)

    docs = sub.add_parser(
        "docs",
        help="render or sync the generated CLI reference (docs/CLI.md) "
        "from this parser tree; --check is the CI drift gate",
    )
    docs.add_argument("--write", nargs="?", const=_DEFAULT_SENTINEL,
                      default=None, metavar="PATH",
                      help="regenerate the reference between the markers "
                      "(default PATH: docs/CLI.md)")
    docs.add_argument("--check", nargs="?", const=_DEFAULT_SENTINEL,
                      default=None, metavar="PATH",
                      help="exit 1 when the page disagrees with the "
                      "parser tree")
    docs.set_defaults(func=_cmd_docs)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
