"""Exception hierarchy shared across the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ImageError(ReproError):
    """An image does not satisfy the requirements of an operation.

    Raised for wrong dimensionality, empty arrays, non-finite pixels, or
    unsupported dtypes.
    """


class ShapeError(ReproError):
    """An array has an incompatible shape for the requested operation."""


class ParameterError(ReproError):
    """A configuration parameter is out of its valid domain."""


class ContractError(ReproError):
    """An ndarray violated a declared stage-boundary contract.

    Raised by :mod:`repro.contracts` (only when ``REPRO_CONTRACTS`` is
    enabled) when an array crossing a public ``imgproc`` / ``hog`` /
    ``detect`` boundary does not match its declared shape, dtype or
    finiteness — and for malformed contract declarations themselves.
    """


class TrainingError(ReproError):
    """SVM training could not proceed (degenerate labels, empty data...)."""


class HardwareConfigError(ReproError):
    """A hardware model was configured inconsistently.

    Examples: a fixed-point format with zero total bits, a classifier
    array whose MACBAR count does not match the window block layout, or a
    memory bank count that does not divide the cell-group pattern.
    """


class ScheduleError(ReproError):
    """The hardware timing model detected an impossible schedule."""


class StreamError(ReproError):
    """The streaming pipeline could not continue.

    Raised for misuse of a closed frame queue, a stalled stream, or —
    via :class:`CircuitBreakerOpen` — a tripped failure circuit breaker.
    Per-frame detection failures do *not* raise; they are isolated into
    ``FrameResult(status=FAILED)`` records.
    """


class CircuitBreakerOpen(StreamError):
    """Too many consecutive frames failed; the stream was aborted."""


class ServeError(StreamError):
    """The serving front end refused an operation.

    Raised for submitting to a closed session, opening a session on a
    draining service, or malformed serving configuration.  Per-frame
    detection failures never raise here either — they surface as
    ``FrameResult(status=FAILED)`` records on the owning session only.
    """


class ParallelError(StreamError):
    """The multiprocess execution backend could not continue.

    Raised for a worker pool that lost its processes, a shared-memory
    ring used after :meth:`close`, or a detector hand-off that cannot be
    pickled.  Per-frame detection failures inside a worker do *not*
    raise; they come back as ``FrameResult(status=FAILED)`` records,
    exactly like the thread backend.
    """
