"""Stopping-distance arithmetic from the paper's introduction.

With the paper's nominal values (PRT 1.5 s [8], deceleration 6.5 m/s^2):

* 50 km/h: braking 14.84 m, total stopping 35.68 m
* 70 km/h: braking ~29.1 m, total stopping ~58.2 m

hence the stated requirement that the DAS detect pedestrians roughly
20-60 m ahead.  (The paper prints 29.16/58.23 for 70 km/h — consistent
with rounding the speed to 19.47 m/s before squaring; the bench reports
both.)
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParameterError

#: Nominal perception-brake reaction time, seconds (Green [8]).
NOMINAL_PRT_S = 1.5

#: Nominal vehicle deceleration, m/s^2 (paper Section 1).
NOMINAL_DECELERATION_MS2 = 6.5


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / 3.6


def perception_reaction_distance(
    speed_kmh: float, prt_s: float = NOMINAL_PRT_S
) -> float:
    """Distance covered while the driver reacts: ``v * PRT``."""
    if speed_kmh < 0:
        raise ParameterError(f"speed must be >= 0, got {speed_kmh}")
    if prt_s < 0:
        raise ParameterError(f"PRT must be >= 0, got {prt_s}")
    return kmh_to_ms(speed_kmh) * prt_s


def braking_distance(
    speed_kmh: float, deceleration_ms2: float = NOMINAL_DECELERATION_MS2
) -> float:
    """Distance to a full stop once braking: ``v^2 / (2 a)``."""
    if speed_kmh < 0:
        raise ParameterError(f"speed must be >= 0, got {speed_kmh}")
    if deceleration_ms2 <= 0:
        raise ParameterError(
            f"deceleration must be positive, got {deceleration_ms2}"
        )
    v = kmh_to_ms(speed_kmh)
    return v * v / (2.0 * deceleration_ms2)


def total_stopping_distance(
    speed_kmh: float,
    prt_s: float = NOMINAL_PRT_S,
    deceleration_ms2: float = NOMINAL_DECELERATION_MS2,
) -> float:
    """Perception-reaction distance plus braking distance."""
    return perception_reaction_distance(speed_kmh, prt_s) + braking_distance(
        speed_kmh, deceleration_ms2
    )


@dataclasses.dataclass(frozen=True)
class StoppingScenario:
    """One row of the paper's stopping-distance discussion."""

    speed_kmh: float
    prt_s: float = NOMINAL_PRT_S
    deceleration_ms2: float = NOMINAL_DECELERATION_MS2

    @property
    def speed_ms(self) -> float:
        return kmh_to_ms(self.speed_kmh)

    @property
    def perception_reaction_distance_m(self) -> float:
        return perception_reaction_distance(self.speed_kmh, self.prt_s)

    @property
    def braking_distance_m(self) -> float:
        return braking_distance(self.speed_kmh, self.deceleration_ms2)

    @property
    def total_stopping_distance_m(self) -> float:
        return (
            self.perception_reaction_distance_m + self.braking_distance_m
        )


def detection_range_requirement(
    speeds_kmh: tuple[float, ...] = (50.0, 70.0),
    prt_s: float = NOMINAL_PRT_S,
    deceleration_ms2: float = NOMINAL_DECELERATION_MS2,
    margin_m: float = 0.0,
) -> tuple[float, float]:
    """The (min, max) detection range the DAS must cover.

    The paper concludes "around 20 m to 60 m": the lower end is the
    braking distance at the lower speed (a pedestrian closer than that
    cannot be saved by braking alone), the upper end is the full
    stopping distance at the higher speed.
    """
    if not speeds_kmh:
        raise ParameterError("speeds_kmh must be non-empty")
    lo = min(braking_distance(s, deceleration_ms2) for s in speeds_kmh)
    hi = max(
        total_stopping_distance(s, prt_s, deceleration_ms2) for s in speeds_kmh
    )
    return lo + margin_m, hi + margin_m


def latency_distance_penalty(speed_kmh: float, latency_s: float) -> float:
    """Metres of road consumed by detector latency.

    Connects throughput to the safety argument: at 70 km/h each
    16.6 ms frame interval costs ~0.32 m, so every frame of processing
    delay eats into the stopping budget.
    """
    if latency_s < 0:
        raise ParameterError(f"latency must be >= 0, got {latency_s}")
    return kmh_to_ms(speed_kmh) * latency_s
