"""Driver-assistance-system kinematics (paper Section 1).

The paper motivates its real-time requirement with stopping-distance
arithmetic: perception-brake reaction time (PRT), braking distance at a
given deceleration, and the resulting detection-range requirement of
roughly 20-60 m.  This package reproduces that arithmetic exactly and
connects it to detector latency (frames of delay cost metres of road).
"""

from repro.das.tracking import IouTracker, Track, time_to_collision
from repro.das.stopping import (
    NOMINAL_PRT_S,
    NOMINAL_DECELERATION_MS2,
    kmh_to_ms,
    perception_reaction_distance,
    braking_distance,
    total_stopping_distance,
    StoppingScenario,
    detection_range_requirement,
    latency_distance_penalty,
)

__all__ = [
    "NOMINAL_PRT_S",
    "NOMINAL_DECELERATION_MS2",
    "kmh_to_ms",
    "perception_reaction_distance",
    "braking_distance",
    "total_stopping_distance",
    "StoppingScenario",
    "detection_range_requirement",
    "latency_distance_penalty",
    "IouTracker",
    "Track",
    "time_to_collision",
]
