"""Frame-to-frame tracking and time-to-collision estimation.

The paper justifies its 60 fps requirement with the driver's reaction
budget; what a DAS actually does with a 60 fps detection stream is
*track* pedestrians across frames and estimate the time to collision.
This module provides both:

* :class:`IouTracker` — greedy IoU data association with constant-
  velocity prediction, track spawning and retirement (the standard
  baseline tracker for window detectors).
* :func:`time_to_collision` — the classic *looming* estimate: a
  pedestrian on collision course expands in the image; with box height
  ``h`` growing at rate ``dh/dt``, TTC ``= h / (dh/dt)`` — no depth
  sensor or camera calibration needed.
"""

from __future__ import annotations

import dataclasses

from repro.detect.nms import box_iou
from repro.detect.types import Detection
from repro.errors import ParameterError


@dataclasses.dataclass
class Track:
    """One tracked object."""

    track_id: int
    boxes: list[Detection]
    missed: int = 0

    @property
    def last(self) -> Detection:
        return self.boxes[-1]

    @property
    def age(self) -> int:
        """Frames since the track was spawned (observations recorded)."""
        return len(self.boxes)

    @property
    def label(self) -> str:
        return self.boxes[-1].label

    def velocity(self) -> tuple[float, float]:
        """Mean per-frame (d_top, d_left) over the recent history."""
        if len(self.boxes) < 2:
            return 0.0, 0.0
        recent = self.boxes[-min(5, len(self.boxes)) :]
        d_top = (recent[-1].top - recent[0].top) / (len(recent) - 1)
        d_left = (recent[-1].left - recent[0].left) / (len(recent) - 1)
        return d_top, d_left

    def predicted_box(self) -> Detection:
        """Constant-velocity prediction of the next frame's box."""
        d_top, d_left = self.velocity()
        last = self.last
        return dataclasses.replace(
            last, top=last.top + d_top, left=last.left + d_left
        )

    def height_growth_rate(self) -> float:
        """Per-frame relative box-height growth (looming rate)."""
        if len(self.boxes) < 2:
            return 0.0
        recent = self.boxes[-min(5, len(self.boxes)) :]
        h0, h1 = recent[0].height, recent[-1].height
        if h0 <= 0:
            return 0.0
        return (h1 / h0) ** (1.0 / (len(recent) - 1)) - 1.0


def time_to_collision(track: Track, frame_rate_hz: float) -> float:
    """Looming time-to-collision in seconds (``inf`` if not expanding).

    A pedestrian at distance ``d`` closing at speed ``v`` projects a box
    of height ``~f*H/d``; so ``h_dot / h = v / d`` and
    ``TTC = d / v = h / h_dot``.
    """
    if frame_rate_hz <= 0:
        raise ParameterError(f"frame rate must be positive, got {frame_rate_hz}")
    growth = track.height_growth_rate()
    if growth <= 0:
        return float("inf")
    frames = 1.0 / growth
    return frames / frame_rate_hz


class IouTracker:
    """Greedy IoU tracker over per-frame detections.

    Parameters
    ----------
    iou_threshold:
        Minimum IoU between a track's predicted box and a detection for
        association.
    max_missed:
        Consecutive unmatched frames before a track is retired.
    min_hits:
        Observations before a track is reported in ``confirmed_tracks``.
    """

    def __init__(
        self,
        iou_threshold: float = 0.3,
        max_missed: int = 3,
        min_hits: int = 2,
    ) -> None:
        if not 0.0 < iou_threshold <= 1.0:
            raise ParameterError(
                f"iou_threshold must be in (0, 1], got {iou_threshold}"
            )
        if max_missed < 0:
            raise ParameterError(f"max_missed must be >= 0, got {max_missed}")
        if min_hits < 1:
            raise ParameterError(f"min_hits must be >= 1, got {min_hits}")
        self.iou_threshold = float(iou_threshold)
        self.max_missed = int(max_missed)
        self.min_hits = int(min_hits)
        self.tracks: list[Track] = []
        self._next_id = 1

    def update(self, detections: list[Detection]) -> list[Track]:
        """Consume one frame's detections; returns live tracks.

        Association is greedy on (predicted box, detection) IoU, best
        pair first; same-label matches only.  Unmatched detections spawn
        new tracks, unmatched tracks accrue a miss and retire past
        ``max_missed``.
        """
        pairs = []
        predictions = [t.predicted_box() for t in self.tracks]
        for ti, pred in enumerate(predictions):
            for di, det in enumerate(detections):
                if det.label != self.tracks[ti].label:
                    continue
                iou = box_iou(pred, det)
                if iou >= self.iou_threshold:
                    pairs.append((iou, ti, di))
        pairs.sort(reverse=True)

        matched_tracks: set[int] = set()
        matched_dets: set[int] = set()
        for iou, ti, di in pairs:
            if ti in matched_tracks or di in matched_dets:
                continue
            self.tracks[ti].boxes.append(detections[di])
            self.tracks[ti].missed = 0
            matched_tracks.add(ti)
            matched_dets.add(di)

        for ti, track in enumerate(self.tracks):
            if ti not in matched_tracks:
                track.missed += 1
        self.tracks = [t for t in self.tracks if t.missed <= self.max_missed]

        for di, det in enumerate(detections):
            if di not in matched_dets:
                self.tracks.append(
                    Track(track_id=self._next_id, boxes=[det])
                )
                self._next_id += 1
        return list(self.tracks)

    def consume(self, frames) -> list[Track]:
        """Update from an in-order stream of per-frame results.

        ``frames`` is an iterable of
        :class:`~repro.stream.FrameResult`-shaped records (anything with
        ``.ok`` and ``.detections``) as emitted by
        :meth:`repro.stream.StreamPipeline.process`, or plain per-frame
        detection lists.  Failed and dropped frames update with no
        detections, so existing tracks *coast* through faults (accruing
        misses) instead of being frozen in time or corrupted by a bad
        frame.  Returns the live tracks after the last frame.
        """
        last: list[Track] = list(self.tracks)
        for frame in frames:
            if isinstance(frame, list):
                detections = frame
            elif getattr(frame, "ok", False):
                detections = list(frame.detections)
            else:
                detections = []
            last = self.update(detections)
        return last

    def confirmed_tracks(self) -> list[Track]:
        """Tracks observed at least ``min_hits`` times and not coasting."""
        return [
            t
            for t in self.tracks
            if t.age >= self.min_hits and t.missed == 0
        ]
