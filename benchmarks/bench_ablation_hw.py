"""Ablations over the hardware architecture parameters.

Sweeps the structural knobs DESIGN.md calls out:

* MACBAR count — throughput vs LUT/FF cost;
* feature word width — quantization error vs BRAM cost;
* N-HOGMem depth — the 18-row reduction (16 rows fail the schedule,
  135 rows overflow the device);
* scale scheduling — parallel classifier instances (paper) vs a
  time-multiplexed single classifier (Hahnle et al. [9]).
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.eval.report import format_table
from repro.hardware import (
    BankedFeatureMemory,
    FrameTimingModel,
    HardwareSvmClassifier,
    ResourceEstimator,
    Zc7020,
)
from repro.hardware.fixed_point import FixedPointFormat, quantization_error
from repro.hog import HogExtractor

from conftest import emit


def test_macbar_sweep(benchmark, results_dir):
    """Fewer MACBARs than the window's 8 block columns means each
    column must be streamed multiple times per window, stretching the
    effective per-column cadence by 8/n; more than 8 MACBARs lets two
    windows share a column pass."""

    WINDOW_COLS = 8

    def run():
        rows = []
        for n in (2, 4, 8, 16):
            cadence = max(1, round(36 * WINDOW_COLS / n))
            timing = FrameTimingModel(n_macbars=min(n, WINDOW_COLS),
                                      cycles_per_column=cadence)
            est = ResourceEstimator(n_macbars=n)
            report = timing.frame_report(scales=(1.0, 1.2))
            rows.append(
                [
                    str(n),
                    str(cadence),
                    f"{timing.scale_timing(1.0).cycles:,}",
                    f"{report.frames_per_second:.1f}",
                    "yes" if report.meets_rate(60) else "no",
                    f"{est.total().lut:.0f}",
                    "yes" if est.total().fits(Zc7020) else "no",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["MACBARs", "cycles/column", "classifier cycles", "fps", "60fps",
         "LUT", "fits"],
        rows,
        title="Ablation — MACBAR pipeline depth (paper: 8)",
    )
    emit(results_dir, "ablation_macbar", text)
    as_dict = {r[0]: r for r in rows}
    # The paper's 8-MACBAR point holds 60 fps and fits the device.
    assert as_dict["8"][4] == "yes"
    assert as_dict["8"][6] == "yes"
    # Halving the array twice drops the classifier below frame rate.
    assert as_dict["2"][4] == "no"


def test_bitwidth_sweep(benchmark, trained_bench_model, results_dir):
    model, extractor = trained_bench_model
    frame = np.random.default_rng(3).random((192, 160))
    grid = extractor.extract(frame)

    from repro.detect import classify_grid

    sw_scores = classify_grid(grid, model).ravel()

    def run():
        rows = []
        for bits in (8, 10, 12, 16, 24):
            fmt = FixedPointFormat(bits, bits - 2)
            wfmt = FixedPointFormat(bits, bits - 4)
            acc_fmt = FixedPointFormat(
                min(64, 2 * bits + 16), fmt.frac_bits + wfmt.frac_bits
            )
            from repro.hardware.mac import SvmClassifierArray
            from repro.hardware.classifier import geometry_for

            array = SvmClassifierArray(
                geometry=geometry_for(extractor.params),
                feature_format=fmt,
                weight_format=wfmt,
                accumulator_format=acc_fmt,
            )
            hw = HardwareSvmClassifier(model, extractor.params, array=array)
            hw_scores = hw.classify_grid(grid).scores.ravel()
            score_err = np.abs(hw_scores - sw_scores).max()
            feat_err = quantization_error(grid.blocks, fmt)["rms_error"]
            flips = int(np.sum((hw_scores > 0) != (sw_scores > 0)))
            bram = ResourceEstimator(feature_bits=bits, weight_bits=bits).total().bram36
            rows.append(
                [
                    f"Q{bits}.{bits - 2}",
                    f"{feat_err:.2e}",
                    f"{score_err:.4f}",
                    str(flips),
                    f"{bram:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["feature fmt", "feature RMS err", "max score err",
         "decision flips", "BRAM36"],
        rows,
        title="Ablation — fixed-point word width (paper: 16-bit words)",
    )
    emit(results_dir, "ablation_bitwidth", text)
    # 16-bit words flip no decisions on this grid; 8-bit is visibly worse.
    assert int(rows[3][3]) == 0
    assert float(rows[0][2]) > float(rows[3][2])


def test_nhogmem_depth(benchmark, trained_bench_model, results_dir):
    model, extractor = trained_bench_model
    grid = HogExtractor().extract(np.random.default_rng(5).random((176, 144)))
    hw = HardwareSvmClassifier(model, extractor.params)

    def check_depth(rows_n):
        memory = BankedFeatureMemory(
            n_rows=rows_n, n_cols=grid.cells.shape[1], words_per_cell=9
        )
        try:
            hw.verify_memory_schedule(grid, memory)
            return "schedules"
        except ScheduleError:
            return "FAILS"

    def run():
        rows = []
        for depth in (16, 17, 18, 24, 135):
            usage = ResourceEstimator(nhogmem_rows=depth).total()
            rows.append(
                [
                    str(depth),
                    check_depth(depth),
                    f"{usage.bram36:.1f}",
                    "yes" if usage.fits(Zc7020) else "no",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["N-HOGMem rows", "schedule", "total BRAM36", "fits ZC7020"],
        rows,
        title="Ablation — N-HOGMem depth (paper: 18 rows, [10]: 135 rows)",
    )
    emit(results_dir, "ablation_nhogmem", text)
    as_dict = {r[0]: r for r in rows}
    assert as_dict["16"][1] == "FAILS"
    assert as_dict["18"][1] == "schedules"
    assert as_dict["18"][3] == "yes"
    assert as_dict["135"][3] == "no"


def test_frontend_arithmetic(benchmark, bench_dataset, results_dir):
    """Ablation over the fixed-point HOG front end ([10]'s datapath).

    Window accuracy when the test features come from hardware front-end
    variants.  The classifier is trained on features from the matching
    front end (as the real system would be: training uses the same
    feature definition the hardware computes).
    """
    from repro.hardware import HardwareHogFrontEnd
    from repro.eval import evaluate_scores
    from repro.svm import train_linear_svm

    def balanced_subset(windows, n, pos_fraction):
        """Class-stratified prefix subset (windows are positives-first)."""
        n_pos = min(windows.n_positive, round(n * pos_fraction))
        n_neg = min(windows.n_negative, n - n_pos)
        return windows.subset(
            list(range(n_pos))
            + list(range(windows.n_positive, windows.n_positive + n_neg))
        )

    train_sub = balanced_subset(bench_dataset.train_windows(), 600, 1 / 3)
    test_sub = balanced_subset(bench_dataset.test_windows(), 600, 1 / 5)

    variants = {
        "exact magnitude + bilinear vote": HardwareHogFrontEnd(
            magnitude="exact", hard_binning=False
        ),
        "alpha-beta + hard vote ([10])": HardwareHogFrontEnd(),
        "L1 magnitude + hard vote": HardwareHogFrontEnd(magnitude="l1"),
        "alpha-beta, 6-bit pixels": HardwareHogFrontEnd(pixel_bits=6),
    }

    def run():
        out = {}
        for name, fe in variants.items():
            x_train = np.stack([fe.extract_window(i) for i in train_sub.images])
            model = train_linear_svm(x_train, train_sub.labels)
            x_test = np.stack([fe.extract_window(i) for i in test_sub.images])
            rep = evaluate_scores(model.decision_function(x_test),
                                  test_sub.labels)
            out[name] = rep.accuracy_percent
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{acc:.2f}"] for name, acc in results.items()]
    text = format_table(
        ["Front-end arithmetic", "Acc%"],
        rows,
        title=(
            f"Ablation — fixed-point HOG front end "
            f"({len(train_sub)} train / {len(test_sub)} test windows)"
        ),
    )
    emit(results_dir, "ablation_frontend", text)

    exact = results["exact magnitude + bilinear vote"]
    hw = results["alpha-beta + hard vote ([10])"]
    # The paper's premise: the hardware approximations are nearly free
    # when training uses the same feature definition.
    assert abs(exact - hw) < 3.0
    for acc in results.values():
        assert acc > 85.0


def test_scale_scheduling(benchmark, results_dir):
    model = FrameTimingModel()

    def run():
        rows = []
        for n_scales in (1, 2, 3, 4, 6):
            scales = tuple(1.2**i for i in range(n_scales))
            par = model.frame_report(scales=scales, parallel_scales=True)
            mux = model.frame_report(scales=scales, parallel_scales=False)
            rows.append(
                [
                    str(n_scales),
                    f"{par.frames_per_second:.1f}",
                    f"{mux.frames_per_second:.1f}",
                    "yes" if par.meets_rate(60) else "no",
                    "yes" if mux.meets_rate(60) else "no",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["scales", "fps parallel", "fps multiplexed", "60fps par",
         "60fps mux"],
        rows,
        title="Ablation — parallel classifiers (paper) vs time multiplexing [9]",
    )
    emit(results_dir, "ablation_scheduling", text)
    # Parallel instances hold the rate for every swept count; a single
    # multiplexed classifier falls under 60 fps beyond two scales.
    assert all(r[3] == "yes" for r in rows)
    assert rows[-1][4] == "no"
