"""Conv vs. gemm scorer throughput, persisted as BENCH_scorer.json.

The question this bench answers: how much end-to-end detect throughput
does the partial-score convolution scorer (``repro.detect.scoring``)
buy over the reference descriptor-matrix GEMM?  The gemm path
materializes one 3780-wide descriptor row per window — ~99 MB of
float64 copies per 480x640 scale at stride 1 — before a single tall
GEMV; the conv path runs one ``(blocks, 36) @ (36, 105)`` matmul on the
block grid the extractor already produced and aggregates 105 shifted
partial maps, touching each block value once.

Protocol (documented in docs/BENCHMARKS.md):

* frames are pre-rendered once and reused for every cell, so the
  measurement isolates scoring cost from synthesis;
* every (ladder, scorer) cell runs one untimed warmup pass — the conv
  scorer builds its per-geometry plans there, exactly as in
  steady-state streaming — followed by ``ROUNDS`` timed passes of
  which the best is kept;
* before timing, the two scorers' outputs on frame 0 are compared:
  every raw window score must agree within 1e-9 and the post-NMS boxes
  must be identical, so the speedup is certified to be a pure
  reimplementation, not a different detector;
* the result document is written to
  ``benchmarks/results/BENCH_scorer.json`` with the environment block
  (cpu count, python) needed to compare runs across machines.

The throughput assertion (conv >= gemm at stride 1) holds on any host:
it is a memory-traffic claim, not a parallelism claim.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.detect import SCORERS, SlidingWindowDetector, classify_grid
from repro.eval.report import format_table
from repro.hog import HogExtractor

from conftest import emit

N_FRAMES = 2
FRAME_SHAPE = (480, 640)
SCALE_LADDERS = ((1.0,), (1.0, 1.2))
STRIDE = 1
THRESHOLD = 0.0
ROUNDS = 3


def _ladder_key(scales):
    return "x".join(f"{s:g}" for s in scales)


def _build(model, extractor, scales, scorer):
    return SlidingWindowDetector(
        model, extractor, scales=list(scales), stride=STRIDE,
        threshold=THRESHOLD, scorer=scorer,
    )


def _assert_equivalent(model, extractor, frame):
    """Certify conv == gemm == conv-cascade on one frame before timing."""
    grid = extractor.extract(frame)
    gemm_scores = classify_grid(grid, model, stride=STRIDE, scorer="gemm")
    conv_scores = classify_grid(grid, model, stride=STRIDE, scorer="conv")
    max_abs_diff = float(np.max(np.abs(conv_scores - gemm_scores)))
    assert max_abs_diff <= 1e-9, (
        f"conv scores diverge from gemm by {max_abs_diff:.3e} > 1e-9"
    )
    casc_scores = classify_grid(
        grid, model, stride=STRIDE, scorer="conv-cascade",
        threshold=THRESHOLD,
    )
    # The cascade is exact for survivors and stores a below-threshold
    # upper bound for rejected anchors, so the detection set is
    # bit-for-bit the conv detection set.
    np.testing.assert_array_equal(
        casc_scores > THRESHOLD, conv_scores > THRESHOLD,
        err_msg="conv-cascade changed the detection set",
    )
    surv = casc_scores > THRESHOLD
    np.testing.assert_array_equal(
        casc_scores[surv], conv_scores[surv],
        err_msg="conv-cascade survivor scores are not bitwise conv",
    )

    boxes = {}
    for scorer in SCORERS:
        result = _build(model, extractor, (1.0, 1.2), scorer).detect(frame)
        boxes[scorer] = [
            (d.top, d.left, d.height, d.width, d.scale)
            for d in result.detections
        ]
    assert boxes["conv"] == boxes["gemm"], (
        "conv and gemm produced different post-NMS boxes"
    )
    assert boxes["conv-cascade"] == boxes["gemm"], (
        "conv-cascade and gemm produced different post-NMS boxes"
    )
    return max_abs_diff, len(boxes["conv"])


def _run_cell(detector, frames):
    """Best-of-ROUNDS end-to-end detect fps for one (ladder, scorer)."""
    for frame in frames:  # warmup: plan build + allocator steady state
        detector.detect(frame)
    best_elapsed = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for frame in frames:
            detector.detect(frame)
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return {
        "fps_best": len(frames) / best_elapsed,
        "ms_per_frame": 1e3 * best_elapsed / len(frames),
    }


def test_scorer_throughput(trained_bench_model, results_dir):
    model, extractor = trained_bench_model
    rng = np.random.default_rng(7)
    frames = [rng.random(FRAME_SHAPE) for _ in range(N_FRAMES)]

    max_abs_diff, n_boxes = _assert_equivalent(model, extractor, frames[0])

    cells = []
    for scales in SCALE_LADDERS:
        for scorer in SCORERS:
            timing = _run_cell(
                _build(model, extractor, scales, scorer), frames
            )
            cells.append({
                "scales": list(scales),
                "scorer": scorer,
                "rounds": ROUNDS,
                **timing,
            })

    by_cell = {
        (_ladder_key(c["scales"]), c["scorer"]): c["fps_best"]
        for c in cells
    }
    document = {
        "bench": "scorer",
        "protocol": {
            "frames": N_FRAMES,
            "frame_shape": list(FRAME_SHAPE),
            "scale_ladders": [list(s) for s in SCALE_LADDERS],
            "stride": STRIDE,
            "threshold": THRESHOLD,
            "rounds": ROUNDS,
            "warmup_runs": 1,
            "selection": "best-of-rounds",
        },
        "equivalence": {
            "max_abs_score_diff": max_abs_diff,
            "tolerance": 1e-9,
            "nms_boxes_identical": True,
            "n_boxes_compared": n_boxes,
        },
        "results": cells,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    out = results_dir / "BENCH_scorer.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    rows = []
    for scales in SCALE_LADDERS:
        key = _ladder_key(scales)
        gemm, conv = by_cell[(key, "gemm")], by_cell[(key, "conv")]
        for scorer in SCORERS:
            cell = next(
                c for c in cells
                if c["scorer"] == scorer and list(scales) == c["scales"]
            )
            rows.append([
                key,
                scorer,
                f"{cell['fps_best']:.2f}",
                f"{cell['ms_per_frame']:.1f}",
                f"{cell['fps_best'] / gemm:.2f}x",
            ])
        rows.append([key, "speedup", "", "", f"{conv / gemm:.2f}x"])
    text = format_table(
        ["Scales", "Scorer", "fps (best)", "ms/frame", "vs gemm"],
        rows,
        title=f"Scorer throughput — {N_FRAMES} frames, "
              f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]}, stride {STRIDE}",
    )
    emit(results_dir, "scorer_fps", text)

    assert out.exists()
    for scales in SCALE_LADDERS:
        key = _ladder_key(scales)
        gemm, conv = by_cell[(key, "gemm")], by_cell[(key, "conv")]
        assert conv >= gemm, (
            f"conv scorer ({conv:.2f} fps) fell below gemm "
            f"({gemm:.2f} fps) on ladder {key} at stride {STRIDE}"
        )
