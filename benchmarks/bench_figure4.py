"""Figure 4 reproduction: ROC curves with AUC and EER.

The paper plots ROC for the original scale and for both scaling methods
at scale 1.1, summarizing with AUC (ideal 1.0) and EER.  We additionally
print a compact sampled curve per configuration so the ROC shape is
inspectable from the bench output.
"""

import numpy as np

from repro.eval.report import format_float, format_table

from conftest import emit


def _curve_rows(name, curve):
    fpr, tpr = curve.sample(6)
    samples = "  ".join(
        f"({format_float(f, 2)},{format_float(t, 2)})" for f, t in zip(fpr, tpr)
    )
    return [name, format_float(curve.auc, 4), format_float(curve.eer, 4), samples]


def test_figure4_roc(benchmark, scaling_experiment, results_dir):
    def build():
        baseline = scaling_experiment.roc_baseline()
        image, feature = scaling_experiment.roc_at_scale(1.1)
        return baseline, image, feature

    baseline, image, feature = benchmark.pedantic(build, rounds=1, iterations=1)

    text = format_table(
        ["Curve", "AUC", "EER", "(FPR,TPR) samples"],
        [
            _curve_rows("original scale", baseline),
            _curve_rows("image scaling s=1.1", image),
            _curve_rows("HOG scaling s=1.1", feature),
        ],
        title="Figure 4 reproduction — ROC curves (AUC ideal = 1.0)",
    )
    emit(results_dir, "figure4", text)

    # All three classifiers must be strong (paper's curves hug the
    # top-left corner), and the two scaling methods must be close.
    for curve in (baseline, image, feature):
        assert curve.auc > 0.95
        assert curve.eer < 0.15
    assert abs(image.auc - feature.auc) < 0.05

    # Sanity: curves are proper ROC curves.
    for curve in (baseline, image, feature):
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
