"""Section 1 stopping-distance arithmetic, paper vs model.

Paper: at 50 km/h braking 14.84 m / stopping 35.68 m; at 70 km/h
braking 29.16 m / stopping 58.23 m (PRT 1.5 s, deceleration 6.5 m/s^2);
conclusion: the DAS must cover roughly 20-60 m.
"""

from repro.das import (
    StoppingScenario,
    detection_range_requirement,
    latency_distance_penalty,
)
from repro.eval.report import format_table

from conftest import emit

PAPER = {
    50.0: {"braking": 14.84, "stopping": 35.68},
    70.0: {"braking": 29.16, "stopping": 58.23},
}


def test_stopping_distances(benchmark, results_dir):
    scenarios = benchmark.pedantic(
        lambda: [StoppingScenario(v) for v in (50.0, 70.0)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for s in scenarios:
        ref = PAPER[s.speed_kmh]
        rows.append(
            [
                f"{s.speed_kmh:.0f} km/h",
                f"{s.perception_reaction_distance_m:.2f}",
                f"{s.braking_distance_m:.2f}",
                f"{ref['braking']:.2f}",
                f"{s.total_stopping_distance_m:.2f}",
                f"{ref['stopping']:.2f}",
            ]
        )
    lo, hi = detection_range_requirement()
    frame_penalty = latency_distance_penalty(70.0, 1.0 / 60.0)
    rows.append(
        ["detection range", "-", "-", "-", f"{lo:.1f} .. {hi:.1f} m",
         "~20 .. 60 m"]
    )
    rows.append(
        ["latency cost @70km/h", "-", "-", "-",
         f"{frame_penalty:.2f} m per 16.6ms frame", "-"]
    )
    text = format_table(
        ["Scenario", "PRT dist (m)", "braking (m)", "paper braking",
         "stopping (m)", "paper stopping"],
        rows,
        title="Section 1 reproduction — stopping distances "
        "(PRT 1.5 s, a = 6.5 m/s^2)",
    )
    emit(results_dir, "stopping", text)

    for s in scenarios:
        ref = PAPER[s.speed_kmh]
        assert abs(s.braking_distance_m - ref["braking"]) < 0.1
        assert abs(s.total_stopping_distance_m - ref["stopping"]) < 0.1
