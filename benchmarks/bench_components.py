"""Component micro-benchmarks (pytest-benchmark, multi-round).

These quantify the claim the whole paper is built on: per pyramid
level, resampling HOG features is far cheaper than resizing the image
and re-extracting HOG — histogram generation is "the most computational
intensive part of the detection chain" (Section 5).
"""

import numpy as np
import pytest

from repro.hog import FeatureScaler, HogExtractor
from repro.imgproc import rescale
from repro.svm import DualCoordinateDescent

FRAME = np.random.default_rng(77).random((480, 640))
EXTRACTOR = HogExtractor()
BASE_GRID = EXTRACTOR.extract(FRAME)


def test_hog_extraction_full_frame(benchmark):
    """Cost of one histogram-generation pass (the expensive stage)."""
    grid = benchmark(EXTRACTOR.extract, FRAME)
    assert grid.cells.shape == (60, 80, 9)


def test_feature_pyramid_level(benchmark):
    """Cost of one *feature-scaled* pyramid level (the paper's method)."""
    scaler = FeatureScaler()
    grid = benchmark(scaler.scale_grid, BASE_GRID, 1.3)
    assert grid.scale == pytest.approx(1.3)


def test_image_pyramid_level(benchmark):
    """Cost of one *image-scaled* pyramid level (the conventional method):
    resize the frame and re-extract HOG."""

    def level():
        return EXTRACTOR.extract(rescale(FRAME, 1.0 / 1.3))

    grid = benchmark(level)
    assert grid.scale == 1.0


def test_feature_level_faster_than_image_level(benchmark):
    """The headline ratio, asserted explicitly (not only reported)."""
    import time

    scaler = FeatureScaler()

    def clock(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def compare():
        t_feature = clock(lambda: scaler.scale_grid(BASE_GRID, 1.3))
        t_image = clock(lambda: EXTRACTOR.extract(rescale(FRAME, 1.0 / 1.3)))
        return t_feature, t_image

    t_feature, t_image = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_feature < t_image / 2.0, (
        f"feature level {t_feature * 1e3:.1f} ms not ≥2x faster than "
        f"image level {t_image * 1e3:.1f} ms"
    )


def test_sliding_window_classification(benchmark, trained_bench_model):
    """MACBAR-equivalent software stage: score every window of a frame."""
    from repro.detect import classify_grid

    model, _ = trained_bench_model
    scores = benchmark(classify_grid, BASE_GRID, model)
    assert scores.size > 0


def test_window_descriptor_extraction(benchmark):
    window = np.random.default_rng(1).random((128, 64))
    desc = benchmark(EXTRACTOR.extract_window, window)
    assert desc.size == 3780


def test_svm_training(benchmark):
    """LibLinear-equivalent training on a small HOG descriptor matrix."""
    rng = np.random.default_rng(2)
    x = rng.random((200, 512))
    w_true = rng.normal(size=512)
    y = np.sign(x @ w_true - np.median(x @ w_true))
    y[y == 0] = 1.0
    solver = DualCoordinateDescent(c=1.0, tol=1e-2, max_iter=100)
    result = benchmark(solver.fit, x, y)
    assert np.mean(result.model.predict(x) == y) > 0.9


def test_hardware_scaler_level(benchmark):
    """The shift-add hardware scaler's software-model cost per level."""
    from repro.hardware import HardwareFeatureScaler

    scaler = HardwareFeatureScaler()
    grid = benchmark(scaler.scale_grid, BASE_GRID, 1.3)
    assert grid.scale == pytest.approx(1.3)
