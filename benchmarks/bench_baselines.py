"""Baseline comparison: the three ways to be multi-scale.

The paper's related work frames three families:

* **image pyramid** — resize the frame per scale (conventional, [9]);
* **feature pyramid** — down-sample HOG features (the paper, after [4]);
* **model pyramid** — rescale the SVM model (Dollar [5], Benenson [1]).

This bench runs all three on identical street scenes and reports
scene-level recall/precision and the wall-clock split.  The shape that
must hold: the image pyramid pays extraction per scale; the other two
pay it once; all three find the planted pedestrians.
"""

import numpy as np

from repro.detect import ModelPyramidDetector, SlidingWindowDetector
from repro.eval import match_detections
from repro.eval.report import format_table

from conftest import emit

SCALES = [1.0, 1.2, 1.44, 1.73]
N_SCENES = 4
THRESHOLD = 0.75


def _make_detectors(model, extractor):
    return {
        "image pyramid [9]": SlidingWindowDetector(
            model, extractor, strategy="image", scales=SCALES,
            threshold=THRESHOLD,
        ),
        "feature pyramid (paper)": SlidingWindowDetector(
            model, extractor, strategy="feature", scales=SCALES,
            threshold=THRESHOLD,
        ),
        "model pyramid [1,5]": ModelPyramidDetector(
            model, extractor, scales=SCALES, threshold=THRESHOLD
        ),
    }


def test_pyramid_strategy_baselines(benchmark, bench_dataset,
                                    trained_bench_model, results_dir):
    model, extractor = trained_bench_model
    scenes = [
        bench_dataset.make_scene(
            height=480, width=640, n_pedestrians=3,
            pedestrian_heights=(128, 210), scene_index=100 + i,
        )
        for i in range(N_SCENES)
    ]

    def run():
        stats = {}
        for name, detector in _make_detectors(model, extractor).items():
            matched = 0
            total_gt = 0
            false_pos = 0
            extraction = 0.0
            total = 0.0
            for scene in scenes:
                result = detector.detect(scene.image)
                match = match_detections(result.detections, scene.boxes)
                matched += len(match.matched)
                total_gt += len(scene.boxes)
                false_pos += len(match.unmatched_detections)
                extraction += result.timings.extraction
                total += result.timings.total
            stats[name] = {
                "recall": matched / total_gt,
                "fp_per_scene": false_pos / len(scenes),
                "extract_ms": extraction / len(scenes) * 1e3,
                "total_ms": total / len(scenes) * 1e3,
            }
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{s['recall']:.2f}",
            f"{s['fp_per_scene']:.1f}",
            f"{s['extract_ms']:.1f}",
            f"{s['total_ms']:.1f}",
        ]
        for name, s in stats.items()
    ]
    text = format_table(
        ["Strategy", "recall", "FP/scene", "extract ms", "total ms"],
        rows,
        title=(
            f"Multi-scale strategy baselines — {N_SCENES} scenes, "
            f"scales {SCALES}, threshold {THRESHOLD}"
        ),
    )
    emit(results_dir, "baselines", text)

    feature = stats["feature pyramid (paper)"]
    image = stats["image pyramid [9]"]
    model_pyr = stats["model pyramid [1,5]"]
    # All three strategies detect most planted pedestrians.
    for name, s in stats.items():
        assert s["recall"] >= 0.5, f"{name} recall {s['recall']}"
    # Extract-once strategies pay far less extraction than the image
    # pyramid (the paper's core speed claim).
    assert feature["extract_ms"] < image["extract_ms"] / 2.0
    assert model_pyr["extract_ms"] < image["extract_ms"] / 2.0


def test_fast_pyramid_fidelity(benchmark, results_dir):
    """Dollar fast pyramids [4] vs the paper's single-extraction pyramid.

    For a scale ladder spanning more than an octave, report per method:
    the number of *real* pixel-domain extractions and the fidelity of
    each constructed level against a ground-truth image-pyramid level
    (cosine similarity of block features over the common grid).
    """
    import time

    from repro.hog import (
        FastFeaturePyramid,
        FeaturePyramid,
        HogExtractor,
        ImagePyramid,
    )
    from repro.hog.scaling import FeatureScaler

    extractor = HogExtractor()
    frame = np.random.default_rng(9).random((512, 384))
    scales = [1.0, 1.2, 1.44, 1.7, 2.0, 2.4]

    def cosine(a, b):
        rows = min(a.shape[0], b.shape[0])
        cols = min(a.shape[1], b.shape[1])
        a = a[:rows, :cols].ravel()
        b = b[:rows, :cols].ravel()
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        return float(a @ b / denom) if denom else 0.0

    def run():
        truth = ImagePyramid.build(frame, scales, extractor)
        t0 = time.perf_counter()
        dollar = FastFeaturePyramid.build(frame, scales, extractor)
        t_dollar = time.perf_counter() - t0
        t0 = time.perf_counter()
        paper = FeaturePyramid.build(
            frame, scales, extractor, FeatureScaler(mode="cells"),
            chained=False,
        )
        t_paper = time.perf_counter() - t0
        out = {}
        for name, pyr, extractions, elapsed in (
            ("dollar [4] (octaves)", dollar, len(dollar.real_scales), t_dollar),
            ("paper (1 extraction)", paper, 1, t_paper),
        ):
            sims = []
            for level in pyr:
                ref = next(
                    (g for g in truth if abs(g.scale - level.scale) < 1e-9),
                    None,
                )
                if ref is not None:
                    sims.append(cosine(level.blocks, ref.blocks))
            out[name] = {
                "extractions": extractions,
                "levels": len(pyr),
                "min_cos": min(sims),
                "mean_cos": float(np.mean(sims)),
                "build_ms": elapsed * 1e3,
            }
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            str(s["extractions"]),
            str(s["levels"]),
            f"{s['mean_cos']:.3f}",
            f"{s['min_cos']:.3f}",
            f"{s['build_ms']:.0f}",
        ]
        for name, s in stats.items()
    ]
    text = format_table(
        ["Pyramid", "real extractions", "levels", "mean cos", "min cos",
         "build ms"],
        rows,
        title=f"Fast-pyramid fidelity vs true image pyramid — scales {scales}",
    )
    emit(results_dir, "fast_pyramid", text)

    dollar = stats["dollar [4] (octaves)"]
    paper = stats["paper (1 extraction)"]
    # Both approximations stay close to the truth; Dollar's extra octave
    # extraction buys equal-or-better worst-case fidelity deep into the
    # ladder, which is exactly the trade the two methods make.
    assert dollar["mean_cos"] > 0.85
    assert paper["mean_cos"] > 0.8
    assert dollar["extractions"] < len(scales)
    assert dollar["min_cos"] >= paper["min_cos"] - 0.05
