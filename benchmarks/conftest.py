"""Shared fixtures for the benchmark harness.

The expensive artifact — the Figure 3 scaling experiment over the full
1.1-2.0 scale sweep — is computed once per session and shared by the
Table 1, Figure 4 and crossover benches.

Dataset size is controlled by the ``REPRO_BENCH_SCALE`` environment
variable: the fraction of the paper's test-split size (1126 positive /
4530 negative) to generate.  The default 0.2 keeps the whole harness
around two minutes; set ``REPRO_BENCH_SCALE=1.0`` for the full-size
protocol run reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.experiments import run_scaling_experiment
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.dataset.augment import PAPER_SCALES

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: Training split is kept fixed (a weak model would confound the
#: scale-sweep comparison); only the test split scales.
TRAIN_POSITIVE = 600
TRAIN_NEGATIVE = 1200


def bench_sizes() -> DatasetSizes:
    paper = DatasetSizes()
    return DatasetSizes(
        train_positive=TRAIN_POSITIVE,
        train_negative=TRAIN_NEGATIVE,
        test_positive=max(1, round(paper.test_positive * BENCH_SCALE)),
        test_negative=max(1, round(paper.test_negative * BENCH_SCALE)),
    )


@pytest.fixture(scope="session")
def bench_dataset():
    return SyntheticPedestrianDataset(seed=42, sizes=bench_sizes())


@pytest.fixture(scope="session")
def scaling_experiment(bench_dataset):
    """The full Figure 3 protocol over all ten paper scales (1.1-2.0)."""
    return run_scaling_experiment(bench_dataset, scales=PAPER_SCALES)


@pytest.fixture(scope="session")
def trained_bench_model(bench_dataset):
    """(model, extractor) trained on the bench dataset's training split."""
    from repro.core.experiments import train_window_model

    return train_window_model(bench_dataset.train_windows())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture()
def telemetry_registry():
    """A fresh enabled registry to thread into instrumented components.

    Benches that want per-stage attribution (rather than end-to-end
    wall clock) pass this to ``SlidingWindowDetector`` /
    ``HogExtractor`` / the accelerator and persist the snapshot with
    :func:`emit_snapshot`.
    """
    from repro.telemetry import MetricsRegistry

    return MetricsRegistry()


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_snapshot(results_dir: Path, name: str, snapshot) -> None:
    """Persist a telemetry snapshot as JSON under benchmarks/results/.

    The file round-trips via ``repro.telemetry.snapshot_from_json`` so
    later runs (or ``docs/PERFORMANCE.md`` refreshes) can diff per-stage
    costs across commits.
    """
    from repro.telemetry import snapshot_to_json

    (results_dir / f"{name}.json").write_text(
        snapshot_to_json(snapshot) + "\n"
    )
