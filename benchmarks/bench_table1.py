"""Table 1 reproduction: accuracy / TP / TN per scale, both methods.

Paper reference values (INRIA, 1126 pos / 4530 neg):

    Scale | Acc% (Image) | Acc% (HOG) | TP (Img) | TP (HOG) | TN (Img) | TN (HOG)
    1.0   | 98.04 (baseline)            | 1083     |          | 4462     |
    1.1   | 96.94        | 97.81      | 1102     | 1053     | 4381     | 4479
    1.2   | 96.92        | 97.58      | 1100     | 1038     | 4382     | 4481
    1.3   | 96.89        | 97.42      | 1103     | 1019     | 4377     | 4491
    1.4   | 97.08        | 97.72      | 1102     | 1039     | 4389     | 4488
    1.5   | 97.49        | 97.24      | 1093     | 1017     | 4421     | 4483

The synthetic-dataset reproduction targets the *shape*, not the exact
values: overall accuracy in the mid-to-high 90s, the feature-scaled
method trading true positives for true negatives relative to the
image-scaled method, and both methods within a couple of percent of
each other below scale 1.5 (the paper's <=2 % claim).
"""

from repro.dataset.augment import TABLE1_SCALES

from conftest import emit


def test_table1_reproduction(benchmark, scaling_experiment, results_dir):
    table = benchmark.pedantic(
        lambda: scaling_experiment.table1(), rounds=1, iterations=1
    )
    # Restrict the printout to the paper's reported scales.
    table1_rows = [r for r in table.rows if r.scale in TABLE1_SCALES]
    table.rows = table1_rows
    emit(results_dir, "table1", table.format())

    # Baseline in the paper's band.
    assert table.baseline.accuracy_percent > 90.0

    for row in table1_rows:
        # The <=2 % claim: the proposed method stays within ~2.5 points
        # of the conventional one at every Table 1 scale.
        gap = abs(
            row.image.accuracy_percent - row.feature.accuracy_percent
        )
        assert gap < 2.5, f"scale {row.scale}: method gap {gap:.2f} > 2.5"
        # The TP/TN asymmetry the paper reports: feature scaling rejects
        # background better (TN) while detecting slightly fewer
        # pedestrians (TP).
        assert row.feature.true_negatives >= row.image.true_negatives - 2
        assert row.feature.true_positives <= row.image.true_positives + 2
