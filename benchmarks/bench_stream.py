"""Streaming-pipeline throughput: achieved fps vs. worker count.

The claim under test: because NumPy releases the GIL inside the dot
products that dominate classification, adding worker threads to the
streaming pipeline raises achieved fps on a multi-core host — the
software pipeline's analogue of the paper's parallel per-scale
classifier banks.

Frames are pre-rendered once (an ``ArraySource``), so the measurement
isolates detect + hand-off cost from synthesis cost.  Each worker count
is run ``ROUNDS`` times and the best run is kept; thread scheduling
noise makes single runs unreliable in CI.
"""

from __future__ import annotations

import numpy as np

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.eval.report import format_table
from repro.stream import ArraySource, StreamPipeline

from conftest import emit

N_FRAMES = 24
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 3


def test_stream_fps_scales_with_workers(trained_bench_model, results_dir):
    model, _ = trained_bench_model
    detector = MultiScalePedestrianDetector(
        model,
        DetectorConfig(scales=(1.0, 1.2), threshold=0.5, stride=2),
    )
    rng = np.random.default_rng(7)
    frames = [rng.random((240, 320)) for _ in range(N_FRAMES)]

    best = {}
    reports = {}
    for workers in WORKER_COUNTS:
        pipeline = StreamPipeline(
            detector, workers=workers, queue_size=2 * workers
        )
        for _ in range(ROUNDS):
            run = pipeline.run(ArraySource(frames))
            assert run.report.frames_ok == N_FRAMES
            if run.report.achieved_fps > best.get(workers, 0.0):
                best[workers] = run.report.achieved_fps
                reports[workers] = run.report
    rows = [
        [
            str(w),
            f"{best[w]:.2f}",
            f"{best[w] / best[WORKER_COUNTS[0]]:.2f}x",
            f"{reports[w].latency_p50_ms:.1f}",
            f"{reports[w].latency_p95_ms:.1f}",
            f"{reports[w].worker_utilization:.2f}",
        ]
        for w in WORKER_COUNTS
    ]
    text = format_table(
        ["Workers", "fps (best)", "speedup", "p50 ms", "p95 ms", "util"],
        rows,
        title=f"Streaming throughput — {N_FRAMES} frames, 240x320, "
              f"2 scales, stride 2",
    )
    emit(results_dir, "stream_fps", text)

    multi_best = max(best[w] for w in WORKER_COUNTS if w > 1)
    assert multi_best >= best[1], (
        f"multi-worker fps {multi_best:.2f} fell below "
        f"single-worker fps {best[1]:.2f}"
    )
