"""Early-reject cascade vs. dense conv scorer, as BENCH_cascade.json.

The question this bench answers: how much end-to-end detect throughput
does the exact early-reject cascade (``scorer="conv-cascade"``) buy
over the dense partial-score conv scorer across a driver-assistance
duty cycle?  The cascade's stage 0 upper-bounds every anchor's score
from the trained weight norms and the frame's own L2-hys block norms
*before* the partial-score matmul.  L2-hys normalization maps any
textured block to unit norm but exactly-flat regions to zero-norm
blocks, so the bound collapses precisely on the frames a DAS spends
most of its time on — open road, unlit scenes, fog, an obstructed
sensor — where every anchor is rejected outright and the matmul plus
all ~105 shifted adds are skipped.  On textured frames a cheap floor
test on the same norm pass proves no anchor can reject and delegates
to the dense aggregation, so the overhead is one O(grid) norm pass.
Because rejection uses a certified upper bound (plus a conservative
float round-off slack), survivors are bitwise identical to the dense
conv path and the detection set never changes — the speedup is pure
avoided work, not a different detector.

Protocol (documented in docs/BENCHMARKS.md):

* the frame set is a duty-cycle sample: one approach scene with
  pedestrians, one empty road, and two textureless steady-state frames
  (unlit road, uniform fog) — pre-rendered once and reused for every
  cell, so the measurement isolates scoring cost from synthesis;
* every cell runs one untimed warmup pass (plan build, allocator
  steady state) followed by ``ROUNDS`` timed rounds; each round times
  every (frame, scorer) pair back-to-back and the per-frame best
  across rounds is kept, so machine drift lands on both scorers
  equally instead of biasing whichever cell ran during a slow stretch;
* before timing, the cascade's full score grid on the busy and the
  textureless frame is gated against the gemm oracle: survivor scores
  within 1e-9, post-NMS boxes identical, survivor set bitwise equal to
  dense conv;
* per-frame rejection statistics (anchors in / rejected at stage 0 /
  survived, positions accumulated vs. dense) are captured from the
  scorer's ``stats_out`` hook and persisted, so the JSON records *why*
  the cascade was fast, not just that it was;
* the result document is ``benchmarks/results/BENCH_cascade.json``.

The throughput assertion (cascade >= conv on the two-scale 480x640
stride-1 ladder at THRESHOLD) is a work-avoidance claim: on the
textureless half of the duty cycle the whole classification stage
costs one norm pass, and on textured frames the floor test keeps the
overhead to that same single pass.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.detect import (
    DEFAULT_CASCADE_K,
    SlidingWindowDetector,
    classify_grid,
)
from repro.detect.scoring import plan_for, score_blocks_cascade
from repro.eval.report import format_table

from conftest import emit

FRAME_SHAPE = (480, 640)
SCALES = (1.0, 1.2)
STRIDE = 1
#: Operating threshold: the paper's detector runs well above the
#: decision boundary to keep the false-positive rate usable, which is
#: exactly the regime where an upper-bound cascade pays off.
THRESHOLD = 0.5
ROUNDS = 5


def _protocol_frames(dataset):
    """The duty-cycle frame set: busy, empty, and two textureless."""
    h, w = FRAME_SHAPE
    busy = dataset.make_scene(
        h, w, n_pedestrians=3, pedestrian_heights=(128, 210), scene_index=0
    ).image
    empty = dataset.make_scene(
        h, w, n_pedestrians=0, pedestrian_heights=(128, 210), scene_index=1
    ).image
    return [
        ("approach", busy),
        ("open-road", empty),
        ("unlit", np.full(FRAME_SHAPE, 0.06)),
        ("fog", np.full(FRAME_SHAPE, 0.45)),
    ]


def _build(model, extractor, scorer, cascade_k=DEFAULT_CASCADE_K):
    return SlidingWindowDetector(
        model, extractor, scales=list(SCALES), stride=STRIDE,
        threshold=THRESHOLD, scorer=scorer, cascade_k=cascade_k,
    )


def _assert_equivalent(model, extractor, frame):
    """Gate: cascade == gemm oracle on one frame before timing."""
    grid = extractor.extract(frame)
    gemm = classify_grid(grid, model, stride=STRIDE, scorer="gemm")
    conv = classify_grid(grid, model, stride=STRIDE, scorer="conv")
    casc = classify_grid(
        grid, model, stride=STRIDE, scorer="conv-cascade",
        threshold=THRESHOLD,
    )
    surv = casc > THRESHOLD
    np.testing.assert_array_equal(surv, conv > THRESHOLD)
    np.testing.assert_array_equal(casc[surv], conv[surv])
    max_abs_diff = (
        float(np.max(np.abs(casc[surv] - gemm[surv])))
        if surv.any() else 0.0
    )
    assert max_abs_diff <= 1e-9, (
        f"cascade survivor scores diverge from gemm by "
        f"{max_abs_diff:.3e} > 1e-9"
    )
    boxes = {}
    for scorer in ("gemm", "conv-cascade"):
        result = _build(model, extractor, scorer).detect(frame)
        boxes[scorer] = [
            (d.top, d.left, d.height, d.width, d.scale)
            for d in result.detections
        ]
    assert boxes["conv-cascade"] == boxes["gemm"], (
        "conv-cascade and gemm produced different post-NMS boxes"
    )
    return max_abs_diff, len(boxes["conv-cascade"])


def _rejection_profile(model, extractor, name, frame):
    """Stage statistics for one frame at base scale (stats_out hook)."""
    grid = extractor.extract(frame)
    bx, by = grid.params.blocks_per_window
    plan = plan_for(model, by, bx)
    stats = {}
    score_blocks_cascade(
        grid.blocks, plan, THRESHOLD, stride=STRIDE,
        cascade_k=DEFAULT_CASCADE_K, stats_out=stats,
    )
    anchors = int(stats["anchors_in"])
    dense_positions = anchors * plan.n_positions
    return {
        "frame": name,
        "anchors_in": anchors,
        "rejected_stage0": int(stats["rejected_per_stage"][0]),
        "anchors_survived": int(stats["anchors_survived"]),
        "bailed_out": bool(stats["bailed_out"]),
        "positions_accumulated": int(stats["positions_accumulated"]),
        "dense_positions": dense_positions,
        "work_fraction": (
            stats["positions_accumulated"] / dense_positions
            if dense_positions else 0.0
        ),
    }


def _run_cells(detectors, frames):
    """Best-of-ROUNDS end-to-end detect fps, one cell per detector.

    Every (frame, detector) pair is timed back-to-back within each
    round and the per-frame best across rounds is kept; the cell time
    is the sum of per-frame bests over the duty cycle.  Pairing the
    scorers at frame granularity keeps slow machine drift (thermal
    throttling, competing load) from biasing whichever cell happened
    to run during a slow stretch.
    """
    for detector in detectors.values():  # warmup: plan build, allocator
        for _, frame in frames:
            detector.detect(frame)
    best = {name: [None] * len(frames) for name in detectors}
    for _ in range(ROUNDS):
        for i, (_, frame) in enumerate(frames):
            for name, detector in detectors.items():
                start = time.perf_counter()
                detector.detect(frame)
                elapsed = time.perf_counter() - start
                if best[name][i] is None or elapsed < best[name][i]:
                    best[name][i] = elapsed
    return {
        name: {
            "fps_best": len(frames) / sum(frame_bests),
            "ms_per_frame": 1e3 * sum(frame_bests) / len(frames),
        }
        for name, frame_bests in best.items()
    }


def test_cascade_throughput(trained_bench_model, bench_dataset,
                            results_dir):
    model, extractor = trained_bench_model
    frames = _protocol_frames(bench_dataset)

    diffs = []
    for gate_frame in (frames[0][1], frames[2][1]):
        max_abs_diff, n_boxes = _assert_equivalent(
            model, extractor, gate_frame
        )
        diffs.append(max_abs_diff)

    timings = _run_cells(
        {scorer: _build(model, extractor, scorer)
         for scorer in ("conv", "conv-cascade")},
        frames,
    )
    cells = [{
        "scorer": scorer,
        "cascade_k": DEFAULT_CASCADE_K if scorer != "conv" else None,
        "rounds": ROUNDS,
        **timings[scorer],
    } for scorer in ("conv", "conv-cascade")]

    rejection = [
        _rejection_profile(model, extractor, name, frame)
        for name, frame in frames
    ]

    document = {
        "bench": "cascade",
        "protocol": {
            "frames": [name for name, _ in frames],
            "frame_shape": list(FRAME_SHAPE),
            "scales": list(SCALES),
            "stride": STRIDE,
            "threshold": THRESHOLD,
            "cascade_k": DEFAULT_CASCADE_K,
            "rounds": ROUNDS,
            "warmup_runs": 1,
            "selection": "best-of-rounds",
        },
        "equivalence": {
            "max_abs_survivor_diff_vs_gemm": max(diffs),
            "tolerance": 1e-9,
            "nms_boxes_identical": True,
            "gated_frames": ["approach", "unlit"],
        },
        "rejection": rejection,
        "results": cells,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    out = results_dir / "BENCH_cascade.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    conv_fps = cells[0]["fps_best"]
    rows = [
        [
            cell["scorer"],
            f"{cell['fps_best']:.2f}",
            f"{cell['ms_per_frame']:.1f}",
            f"{cell['fps_best'] / conv_fps:.2f}x",
        ]
        for cell in cells
    ]
    for prof in rejection:
        rows.append([
            f"{prof['frame']} work",
            f"{100.0 * prof['work_fraction']:.1f}%",
            f"{prof['rejected_stage0']}/{prof['anchors_in']} rej",
            "",
        ])
    text = format_table(
        ["Config", "fps (best)", "ms/frame", "vs conv"],
        rows,
        title=f"Cascade throughput — duty cycle of {len(frames)} frames, "
              f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]}, "
              f"scales {SCALES}, stride {STRIDE}, "
              f"threshold {THRESHOLD}",
    )
    emit(results_dir, "cascade_fps", text)

    assert out.exists()
    cascade = cells[1]
    assert cascade["fps_best"] >= conv_fps, (
        f"conv-cascade ({cascade['fps_best']:.2f} fps) fell below the "
        f"dense conv scorer ({conv_fps:.2f} fps) on "
        f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]} scales {SCALES} at "
        f"stride {STRIDE}, threshold {THRESHOLD}"
    )
