"""Buffer arena vs. allocating frame path, as BENCH_arena.json.

The question this bench answers: what does the zero-copy buffer arena
(``repro.arena``, docs/MEMORY.md) do to end-to-end detect throughput
and per-frame allocation churn, and does it change the detections?
The arena replaces every full-frame temporary in the hot kernels
(gradients, histogram voting, block normalization, scoring) with views
into named preallocated slabs, so a steady-state frame performs no
slab allocations at all — the only remaining per-frame allocation is
``np.bincount``'s own output inside the histogram scatter.

Because every ``out=`` kernel runs the identical operation sequence on
both paths (docs/MEMORY.md "out= kernel conventions"), the arena is
pure allocation avoidance: detections must be bitwise identical, and
the bench gates on that before timing anything.

Protocol (documented in docs/BENCHMARKS.md):

* the frame set is the same driver-assistance duty cycle as the
  cascade bench: one approach scene with pedestrians, one empty road,
  two textureless steady-state frames (unlit road, uniform fog);
* both cells are ``scorer="conv"`` detectors owning fresh extractors,
  differing only in ``arena=``; every cell runs one untimed warmup
  pass (slab population, plan build) followed by ``ROUNDS`` timed
  rounds with per-frame best-of-rounds pairing, as in bench_cascade;
* before timing, detections on every duty-cycle frame are gated
  bitwise equal between the two cells, twice (the second pass
  exercises warm slabs);
* after the timed rounds the arena's counters must show a frozen
  working set: zero misses/resizes/fallbacks since warmup — the
  docs/MEMORY.md steady-state claim, measured on the real duty cycle;
* per-frame allocation churn (tracemalloc peak minus baseline across
  one detect) is recorded for both cells;
* the result document is ``benchmarks/results/BENCH_arena.json``.

The throughput assertion (arena >= plain on the two-scale 480x640
stride-1 ladder) is an allocator-pressure claim: the arena path does
strictly less work — same FLOPs, no page faults or allocator traffic
for the ~20 full-frame temporaries a plain detect cycles through.
"""

from __future__ import annotations

import json
import os
import platform
import time
import tracemalloc

import numpy as np

from repro.arena import BufferArena
from repro.detect import SlidingWindowDetector
from repro.eval.report import format_table

from conftest import emit

FRAME_SHAPE = (480, 640)
SCALES = (1.0, 1.2)
STRIDE = 1
THRESHOLD = 0.5
ROUNDS = 5
#: Churn rounds are few: tracemalloc roughly doubles allocation cost,
#: and the worst-of-N peak is stable once slabs are warm.
CHURN_ROUNDS = 3


def _protocol_frames(dataset):
    """The duty-cycle frame set: busy, empty, and two textureless."""
    h, w = FRAME_SHAPE
    busy = dataset.make_scene(
        h, w, n_pedestrians=3, pedestrian_heights=(128, 210), scene_index=0
    ).image
    empty = dataset.make_scene(
        h, w, n_pedestrians=0, pedestrian_heights=(128, 210), scene_index=1
    ).image
    return [
        ("approach", busy),
        ("open-road", empty),
        ("unlit", np.full(FRAME_SHAPE, 0.06)),
        ("fog", np.full(FRAME_SHAPE, 0.45)),
    ]


def _build(model, use_arena):
    # extractor=None on both cells: the detector only lends its arena
    # to an extractor it constructed (single-owner rule, docs/MEMORY.md),
    # and symmetric fresh extractors keep the cells comparable.
    return SlidingWindowDetector(
        model, None, scales=list(SCALES), stride=STRIDE,
        threshold=THRESHOLD, scorer="conv",
        arena=BufferArena() if use_arena else None,
    )


def _boxes(result):
    return [
        (d.top, d.left, d.height, d.width, d.scale, d.score)
        for d in result.detections
    ]


def _assert_equivalent(arena_det, plain_det, frames):
    """Gate: bitwise-identical detections on every frame, twice.

    The second pass runs on warm slabs — a kernel that produced the
    right answer into a freshly-zeroed slab but depended on that
    zeroing would diverge here.
    """
    n_boxes = {}
    for _ in range(2):
        for name, frame in frames:
            with_arena = arena_det.detect(frame)
            without = plain_det.detect(frame)
            assert _boxes(with_arena) == _boxes(without), (
                f"arena path diverged from allocating path on {name!r}"
            )
            assert (with_arena.n_windows_evaluated
                    == without.n_windows_evaluated)
            assert with_arena.scales_used == without.scales_used
            n_boxes[name] = len(with_arena.detections)
    return n_boxes


def _run_cells(detectors, frames):
    """Best-of-ROUNDS end-to-end detect fps, one cell per detector.

    Per-frame pairing across cells within each round, best across
    rounds — identical selection to bench_cascade, so machine drift
    lands on both cells equally.
    """
    for detector in detectors.values():  # warmup: slabs, plan build
        for _, frame in frames:
            detector.detect(frame)
    best = {name: [None] * len(frames) for name in detectors}
    for _ in range(ROUNDS):
        for i, (_, frame) in enumerate(frames):
            for name, detector in detectors.items():
                start = time.perf_counter()
                detector.detect(frame)
                elapsed = time.perf_counter() - start
                if best[name][i] is None or elapsed < best[name][i]:
                    best[name][i] = elapsed
    return {
        name: {
            "fps_best": len(frames) / sum(frame_bests),
            "ms_per_frame": 1e3 * sum(frame_bests) / len(frames),
        }
        for name, frame_bests in best.items()
    }


def _per_frame_churn(detector, frame):
    """Worst per-frame transient allocation churn (tracemalloc peak)."""
    for _ in range(2):
        detector.detect(frame)  # warmup outside the trace
    tracemalloc.start()
    try:
        worst = 0
        for _ in range(CHURN_ROUNDS):
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            detector.detect(frame)
            peak = tracemalloc.get_traced_memory()[1]
            worst = max(worst, peak - base)
    finally:
        tracemalloc.stop()
    return int(worst)


def _arena_stats(arena):
    return {
        "hits": arena.hits,
        "misses": arena.misses,
        "resizes": arena.resizes,
        "fallback_allocs": arena.fallback_allocs,
        "slab_bytes": arena.slab_bytes,
        "slabs": len(arena.names),
    }


def test_arena_throughput(trained_bench_model, bench_dataset, results_dir):
    model, _ = trained_bench_model
    frames = _protocol_frames(bench_dataset)

    arena_det = _build(model, use_arena=True)
    plain_det = _build(model, use_arena=False)
    n_boxes = _assert_equivalent(arena_det, plain_det, frames)

    # Steady-state gate: the equivalence pass warmed the slabs at the
    # duty cycle's (single) frame geometry; the timed rounds must not
    # grow the working set.
    warm = _arena_stats(arena_det.arena)
    timings = _run_cells({"arena": arena_det, "plain": plain_det}, frames)
    steady = _arena_stats(arena_det.arena)
    assert (steady["misses"], steady["resizes"], steady["fallback_allocs"],
            steady["slab_bytes"]) == (
        warm["misses"], warm["resizes"], warm["fallback_allocs"],
        warm["slab_bytes"],
    ), "arena working set grew after warmup (docs/MEMORY.md steady state)"

    frame = frames[0][1]
    churn = {
        "arena": _per_frame_churn(arena_det, frame),
        "plain": _per_frame_churn(plain_det, frame),
    }

    cells = [{
        "config": name,
        "rounds": ROUNDS,
        "churn_bytes_per_frame": churn[name],
        **timings[name],
    } for name in ("plain", "arena")]

    document = {
        "bench": "arena",
        "protocol": {
            "frames": [name for name, _ in frames],
            "frame_shape": list(FRAME_SHAPE),
            "scales": list(SCALES),
            "stride": STRIDE,
            "threshold": THRESHOLD,
            "scorer": "conv",
            "rounds": ROUNDS,
            "churn_rounds": CHURN_ROUNDS,
            "warmup_runs": 1,
            "selection": "best-of-rounds",
        },
        "equivalence": {
            "detections_bitwise_identical": True,
            "gated_frames": [name for name, _ in frames],
            "passes": 2,
            "n_boxes": n_boxes,
        },
        "arena": {
            **steady,
            "steady_state": True,
            "frame_bytes": int(frame.nbytes),
        },
        "results": cells,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    out = results_dir / "BENCH_arena.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    plain_fps = timings["plain"]["fps_best"]
    rows = [
        [
            cell["config"],
            f"{cell['fps_best']:.2f}",
            f"{cell['ms_per_frame']:.1f}",
            f"{cell['churn_bytes_per_frame'] / 2**20:.2f}",
            f"{cell['fps_best'] / plain_fps:.2f}x",
        ]
        for cell in cells
    ]
    rows.append([
        "arena slabs",
        f"{steady['slabs']}",
        f"{steady['slab_bytes'] / 2**20:.2f} MiB",
        f"{steady['misses']} miss",
        f"{steady['hits']} hit",
    ])
    text = format_table(
        ["Config", "fps (best)", "ms/frame", "churn MiB/frame", "vs plain"],
        rows,
        title=f"Arena throughput — duty cycle of {len(frames)} frames, "
              f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]}, scales {SCALES}, "
              f"stride {STRIDE}, threshold {THRESHOLD}",
    )
    emit(results_dir, "arena_fps", text)

    assert out.exists()
    assert churn["arena"] < churn["plain"], (
        f"arena per-frame churn ({churn['arena']} B) not below the "
        f"allocating path ({churn['plain']} B)"
    )
    arena_fps = timings["arena"]["fps_best"]
    assert arena_fps >= plain_fps, (
        f"arena path ({arena_fps:.2f} fps) fell below the allocating "
        f"path ({plain_fps:.2f} fps) on {FRAME_SHAPE[0]}x{FRAME_SHAPE[1]} "
        f"scales {SCALES} at stride {STRIDE}, threshold {THRESHOLD}"
    )
