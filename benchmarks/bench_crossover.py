"""The scale-1.5 crossover claim (Sections 4 and 6), extended sweep.

"as long as down-sampling is done with the scale value of less than
1.5 the results for the modified method outperform the conventional
algorithm ... as the scale value increases from 1.5 to higher values,
down-sampled HOG features are not as promising as the resized image."

This bench sweeps the full 1.1-2.0 protocol range and reports, per
scale, the accuracy of both methods and their gap.  On the synthetic
substitute the *degradation above 1.5* reproduces clearly (driven by
true-positive loss); the *advantage below 1.5* reproduces as parity
within the paper's 2 % envelope — see EXPERIMENTS.md for discussion.
"""

import numpy as np

from repro.eval.report import format_table

from conftest import emit


def test_crossover_sweep(benchmark, scaling_experiment, results_dir):
    table = benchmark.pedantic(
        lambda: scaling_experiment.table1(), rounds=1, iterations=1
    )

    rows = []
    gaps_below_15 = []
    gaps_above_15 = []
    for row in table.rows:
        gap = row.feature.accuracy_percent - row.image.accuracy_percent
        rows.append(
            [
                f"{row.scale:.1f}",
                f"{row.image.accuracy_percent:.2f}",
                f"{row.feature.accuracy_percent:.2f}",
                f"{gap:+.2f}",
                f"{row.feature.counts.miss_rate * 100:.1f}%",
            ]
        )
        if row.scale < 1.5:
            gaps_below_15.append(gap)
        elif row.scale > 1.5:
            gaps_above_15.append(gap)
    text = format_table(
        ["Scale", "Acc% image", "Acc% HOG", "HOG-image gap", "HOG miss rate"],
        rows,
        title="Crossover sweep — feature vs image scaling, s = 1.1 .. 2.0",
    )
    emit(results_dir, "crossover", text)

    # Below 1.5 the methods are within the paper's ~2 % envelope.
    assert max(abs(g) for g in gaps_below_15) < 2.5
    # Above 1.5 the feature method degrades relative to below-1.5:
    # its worst deficit beyond the crossover exceeds its worst deficit
    # before it (the paper's direction of the effect).
    assert min(gaps_above_15) <= min(gaps_below_15) + 1e-9

    # Degradation is driven by miss rate (TP loss), not false alarms —
    # the mechanism visible in the paper's TP/TN columns.
    worst = min(table.rows, key=lambda r: r.feature.accuracy_percent)
    assert worst.feature.counts.miss_rate > worst.feature.counts.false_positive_rate
