"""Micro-batched dispatch + keep-alive HTTP, as BENCH_serve.json.

Two questions, one document:

* does coalescing concurrent sessions' frames into one worker dispatch
  (``DetectionService(max_batch=...)``) raise end-to-end service
  throughput over one-task-per-frame dispatch?  The per-frame IPC cost
  of the process backend — queue pickling, pipe writes, feeder-thread
  wakeups — is fixed per *message*, so batching amortizes it across
  the frames that share a message;
* does HTTP/1.1 keep-alive (``--keep-alive``) beat the default
  one-request-per-connection mode?  Same amortization argument one
  layer up: the TCP handshake + socket teardown is fixed per
  *connection*.

Protocol (documented in docs/BENCHMARKS.md):

* frames are pre-rendered once and reused for every cell;
* **equivalence gate before any timing**: the batched and unbatched
  services must produce frame-for-frame identical result sequences
  (index, status, detections) for the same submissions — batching is a
  transport optimization, never an answer change;
* each service cell warms its pool with an untimed pass, then runs
  ``ROUNDS`` timed passes of which the best is kept; submissions are
  front-loaded (all frames queued, then drained) so the measurement is
  throughput under backlog, where batching has material to coalesce;
* the HTTP cells measure probe-request rate (connection-bound, where
  keep-alive shows up) and full frame round-trip rate on one
  persistent client against a loopback server;
* the result document is ``benchmarks/results/BENCH_serve.json`` with
  the environment block needed to compare runs across machines.

The batched >= unbatched assertion only applies on multi-core hosts
(on one core there is no worker concurrency for batching to feed); the
keep-alive >= close assertion is connection-bound and holds anywhere.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import queue
import threading
import time

import numpy as np

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.eval.report import format_table
from repro.serve import DetectionService, ServeClient, start_http_server
from repro.telemetry import MetricsRegistry

from conftest import emit

N_FRAMES = 12          # per session, per pass
N_SESSIONS = 4
WORKERS = 2
BACKEND = "process"
MAX_BATCH = 4
ROUNDS = 3
FRAME_SHAPE = (96, 80)
N_PROBES = 150         # /healthz requests per HTTP transport cell
N_HTTP_FRAMES = 24     # frame round-trips per HTTP transport cell


async def _drain(session, count):
    collected = []
    while len(collected) < count:
        batch = await session.results(
            max_items=count - len(collected), timeout=60.0
        )
        assert batch or not session.done, "session ended early"
        collected.extend(batch)
    return collected


async def _one_pass(service, frames):
    """Front-load every session's frames, then drain; returns
    (elapsed_s, per-session fingerprints)."""
    sessions = [service.open_session() for _ in range(N_SESSIONS)]
    t0 = time.perf_counter()
    for frame in frames:
        for session in sessions:
            ticket = await session.submit(frame)
            assert ticket.accepted
    drained = [await _drain(s, len(frames)) for s in sessions]
    elapsed = time.perf_counter() - t0
    for session in sessions:
        await session.close()
    fingerprints = [
        [(r.index, r.status.value, r.detections) for r in got]
        for got in drained
    ]
    return elapsed, fingerprints


def _run_service_cell(detector, frames, max_batch, batch_window_ms):
    """Best-of-ROUNDS fps for one dispatch configuration, plus the
    first pass's fingerprints (the equivalence gate's input)."""
    async def scenario():
        telemetry = MetricsRegistry()
        service = DetectionService(
            detector, workers=WORKERS, backend=BACKEND,
            max_batch=max_batch, batch_window_ms=batch_window_ms,
            max_pending=N_FRAMES + 2, telemetry=telemetry,
        )
        await service.start()
        try:
            # Untimed warmup: the pool warm-starts its workers here,
            # so fork/build cost is excluded, as in steady state.
            _, fingerprints = await _one_pass(service, frames)
            best = None
            for _ in range(ROUNDS):
                elapsed, _ = await _one_pass(service, frames)
                if best is None or elapsed < best:
                    best = elapsed
        finally:
            report = await service.shutdown()
        assert report.drained_clean
        assert report.frames_failed == 0
        snap = telemetry.snapshot()
        return best, fingerprints, snap
    elapsed, fingerprints, snap = asyncio.run(scenario())
    total = N_SESSIONS * N_FRAMES
    return {
        "max_batch": max_batch,
        "batch_window_ms": batch_window_ms,
        "sessions": N_SESSIONS,
        "workers": WORKERS,
        "backend": BACKEND,
        "fps_best": total / elapsed,
        "elapsed_s_best": elapsed,
        "batches_formed": snap.counters.get("serve.batch.formed", 0),
        "multi_frame_batches": snap.counters.get(
            "serve.batch.multi_frame", 0
        ),
        "rounds": ROUNDS,
    }, fingerprints


class _Server:
    """A serve stack on a private loop thread for the HTTP cells."""

    def __init__(self, detector, keep_alive):
        self._detector = detector
        self._keep_alive = keep_alive
        self._ports: queue.Queue = queue.Queue()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> int:
        self._thread.start()
        port = self._ports.get(timeout=120)
        if isinstance(port, BaseException):
            raise port
        return port

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._ports.put(error)

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = DetectionService(
            self._detector, workers=WORKERS,
            max_pending=N_HTTP_FRAMES + 2,
            telemetry=MetricsRegistry(),
        )
        await service.start()
        app, _, port = await start_http_server(
            service, "127.0.0.1", 0, keep_alive=self._keep_alive,
        )
        self._ports.put(port)
        await self._stop.wait()
        await app.stop()
        await service.shutdown()


def _run_http_cell(detector, frames, keep_alive):
    """Probe-rate and frame round-trip rate for one connection mode."""
    with _Server(detector, keep_alive) as port:
        client = ServeClient(port=port, timeout=120.0)
        try:
            client.health()  # warmup (and, with keep-alive, connect)
            best_probe = None
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                for _ in range(N_PROBES):
                    assert client.health()
                elapsed = time.perf_counter() - t0
                if best_probe is None or elapsed < best_probe:
                    best_probe = elapsed
            best_frames = None
            for _ in range(ROUNDS):
                session = client.open_session()
                t0 = time.perf_counter()
                for i in range(N_HTTP_FRAMES):
                    ticket = client.submit_frame(
                        session, frames[i % len(frames)]
                    )
                    assert ticket["accepted"]
                results = client.collect(session, N_HTTP_FRAMES)
                elapsed = time.perf_counter() - t0
                assert len(results) == N_HTTP_FRAMES
                assert all(r["status"] == "ok" for r in results)
                client.close_session(session)
                if best_frames is None or elapsed < best_frames:
                    best_frames = elapsed
        finally:
            client.close()
    return {
        "keep_alive": keep_alive,
        "probe_rps_best": N_PROBES / best_probe,
        "frame_rps_best": N_HTTP_FRAMES / best_frames,
        "probes": N_PROBES,
        "frames": N_HTTP_FRAMES,
        "rounds": ROUNDS,
    }


def test_serve_batching_and_keepalive(trained_bench_model, results_dir):
    model, _ = trained_bench_model
    detector = MultiScalePedestrianDetector(
        model,
        DetectorConfig(scales=(1.0,), threshold=0.5, stride=2),
    )
    rng = np.random.default_rng(11)
    frames = [rng.random(FRAME_SHAPE) for _ in range(N_FRAMES)]

    unbatched, base_fp = _run_service_cell(detector, frames, 1, 0.0)
    batched, batch_fp = _run_service_cell(
        detector, frames, MAX_BATCH, 1.0
    )
    # The equivalence gate: batching must not change a single result.
    assert batch_fp == base_fp, (
        "batched dispatch changed the emitted results"
    )
    assert batched["multi_frame_batches"] >= 1, (
        "the batched cell never coalesced a multi-frame batch"
    )

    http_close = _run_http_cell(detector, frames, keep_alive=False)
    http_keep = _run_http_cell(detector, frames, keep_alive=True)

    document = {
        "bench": "serve",
        "protocol": {
            "frames_per_session": N_FRAMES,
            "sessions": N_SESSIONS,
            "workers": WORKERS,
            "backend": BACKEND,
            "max_batch": MAX_BATCH,
            "frame_shape": list(FRAME_SHAPE),
            "scales": [1.0],
            "stride": 2,
            "rounds": ROUNDS,
            "warmup_runs": 1,
            "selection": "best-of-rounds",
            "equivalence_gate": "batched == unbatched, frame-for-frame",
        },
        "results": {
            "dispatch": [unbatched, batched],
            "http": [http_close, http_keep],
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    out = results_dir / "BENCH_serve.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    rows = [
        ["dispatch", "max_batch=1",
         f"{unbatched['fps_best']:.2f} fps", "1.00x"],
        ["dispatch", f"max_batch={MAX_BATCH}",
         f"{batched['fps_best']:.2f} fps",
         f"{batched['fps_best'] / unbatched['fps_best']:.2f}x"],
        ["http probes", "close",
         f"{http_close['probe_rps_best']:.0f} req/s", "1.00x"],
        ["http probes", "keep-alive",
         f"{http_keep['probe_rps_best']:.0f} req/s",
         f"{http_keep['probe_rps_best'] / http_close['probe_rps_best']:.2f}x"],
        ["http frames", "close",
         f"{http_close['frame_rps_best']:.2f} fps", "1.00x"],
        ["http frames", "keep-alive",
         f"{http_keep['frame_rps_best']:.2f} fps",
         f"{http_keep['frame_rps_best'] / http_close['frame_rps_best']:.2f}x"],
    ]
    text = format_table(
        ["Cell", "Mode", "rate (best)", "speedup"],
        rows,
        title=f"Serve batching + keep-alive — {N_SESSIONS} sessions x "
              f"{N_FRAMES} frames, {WORKERS} {BACKEND} workers, "
              f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]}",
    )
    emit(results_dir, "serve_fps", text)

    assert out.exists()
    # Batching feeds concurrent workers; on one core there is nothing
    # to feed concurrently (see module doc).
    if (os.cpu_count() or 1) > 1:
        assert batched["fps_best"] >= unbatched["fps_best"], (
            f"batched dispatch {batched['fps_best']:.2f} fps fell "
            f"below unbatched {unbatched['fps_best']:.2f} fps on a "
            f"{os.cpu_count()}-core host"
        )
    # Keep-alive is connection-bound: skipping the per-request TCP
    # handshake must not lose to paying it.
    assert http_keep["probe_rps_best"] >= http_close["probe_rps_best"], (
        f"keep-alive probe rate {http_keep['probe_rps_best']:.0f}/s "
        f"fell below close-per-request "
        f"{http_close['probe_rps_best']:.0f}/s"
    )
