"""Table 2 reproduction: FPGA resource utilization on the Zynq ZC7020.

Paper values:  LUT 26,051 (49.6 %), FF 40,190, LUTRAM 383 (2.28 %),
BRAM 98.5, DSP48 18 (8.18 %), BUFG 1 (3.13 %).

The estimator's per-unit constants are calibrated at the paper's
configuration (DESIGN.md); this bench verifies the calibration and
prints the side-by-side table, then exercises the structural sweeps the
model exists for.
"""

from repro.hardware import ResourceEstimator, Zc7020
from repro.hardware.resources import PAPER_TABLE2

from conftest import emit


def _row(name, usage, budget):
    util = usage.utilization(budget)
    return [
        name,
        f"{usage.lut:.0f} ({util['lut']:.1f}%)",
        f"{usage.ff:.0f} ({util['ff']:.1f}%)",
        f"{usage.lutram:.0f}",
        f"{usage.bram36:.1f} ({util['bram36']:.1f}%)",
        f"{usage.dsp48:.0f}",
        f"{usage.bufg:.0f}",
    ]


def test_table2_resources(benchmark, results_dir):
    estimator = ResourceEstimator()
    total = benchmark.pedantic(estimator.total, rounds=1, iterations=1)

    from repro.eval.report import format_table

    rows = [
        _row("paper (Table 2)", PAPER_TABLE2, Zc7020),
        _row("model (2 scales)", total, Zc7020),
        _row("  hog extractor", estimator.hog_extractor(), Zc7020),
        _row("  n-hogmem (18 rows)", estimator.nhogmem(), Zc7020),
        _row("  classifier x1", estimator.classifier_instance(), Zc7020),
        _row("  scaler x1", estimator.scaler_instance(), Zc7020),
        _row("  static region", estimator.static_region(), Zc7020),
        _row("model (3 scales)", ResourceEstimator(n_scales=3).total(), Zc7020),
        _row("model (4 scales)", ResourceEstimator(n_scales=4).total(), Zc7020),
    ]
    text = format_table(
        ["Component", "LUT", "FF", "LUTRAM", "BRAM36", "DSP48", "BUFG"],
        rows,
        title="Table 2 reproduction — Zynq ZC7020 utilization",
    )
    emit(results_dir, "table2", text)

    # Calibration is exact at the paper's configuration.
    assert total.lut == PAPER_TABLE2.lut
    assert total.ff == PAPER_TABLE2.ff
    assert total.bram36 == PAPER_TABLE2.bram36
    assert total.dsp48 == PAPER_TABLE2.dsp48
    assert total.fits(Zc7020)

    # The paper's remark: "by employing a larger device ... the design
    # could be easily extended to cover several scales".  On the ZC7020
    # itself a third scale still fits, but BRAM becomes the wall soon.
    three = ResourceEstimator(n_scales=3).total()
    assert three.fits(Zc7020)
    many = ResourceEstimator(n_scales=6).total()
    assert not many.fits(Zc7020)
