"""Ablation: feature-scaling design choices (DESIGN.md section 5.3).

The paper fixes one design: bilinear down-sampling of normalized block
features, realized with shift-and-add coefficients.  This bench sweeps
the choices around that point:

* scaling surface — normalized blocks (paper) vs raw cells + renorm;
* re-normalization after block resampling — off (paper literal) vs on;
* interpolation kernel — bilinear (paper) vs nearest;
* arithmetic — exact multipliers vs 3-term shift-add (hardware).

Reported as window-classification accuracy at scales 1.2 and 1.8 on a
subset of the bench test split.
"""

import numpy as np

from repro.dataset.augment import upsample_window_set
from repro.eval import evaluate_scores
from repro.eval.report import format_table
from repro.hardware import HardwareFeatureScaler
from repro.hog import FeatureScaler

from conftest import emit

SCALES = (1.2, 1.8)
SUBSET = 500  # windows per scale — keeps the 8-variant sweep tractable


def _variants():
    return {
        "blocks, bilinear (paper)": FeatureScaler(mode="blocks"),
        "blocks + renormalize": FeatureScaler(mode="blocks", renormalize=True),
        "cells + renormalize": FeatureScaler(mode="cells"),
        "blocks, nearest kernel": FeatureScaler(mode="blocks", method="nearest"),
        "shift-add 3 terms (hw)": HardwareFeatureScaler(max_terms=3),
        "shift-add 1 term (hw)": HardwareFeatureScaler(max_terms=1),
    }


def test_scaling_ablation(benchmark, bench_dataset, trained_bench_model,
                          results_dir):
    model, extractor = trained_bench_model
    test = bench_dataset.test_windows()
    # Keep the test split's 1:4 positive:negative ratio in the subset
    # (windows are generated positives-first).
    n = min(SUBSET, len(test))
    n_pos = min(test.n_positive, n // 5)
    n_neg = min(test.n_negative, n - n_pos)
    subset = test.subset(
        list(range(n_pos))
        + list(range(test.n_positive, test.n_positive + n_neg))
    )
    n = len(subset)

    def evaluate_variant(scaler, upsampled):
        descriptors = np.stack(
            [
                scaler.rescale_to_window(extractor.extract(img))
                for img in upsampled.images
            ]
        )
        scores = model.decision_function(descriptors)
        return evaluate_scores(scores, upsampled.labels).accuracy_percent

    def run():
        upsampled = {s: upsample_window_set(subset, s) for s in SCALES}
        out = {}
        for name, scaler in _variants().items():
            out[name] = [evaluate_variant(scaler, upsampled[s]) for s in SCALES]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name] + [f"{acc:.2f}" for acc in accs]
        for name, accs in results.items()
    ]
    text = format_table(
        ["Scaling variant"] + [f"Acc% s={s}" for s in SCALES],
        rows,
        title=f"Feature-scaling ablation — {n} test windows per scale",
    )
    emit(results_dir, "ablation_scaling", text)

    paper = results["blocks, bilinear (paper)"]
    # Every bilinear variant stays within a few points of the paper's
    # choice at the in-envelope scale.
    for name in ("blocks + renormalize", "cells + renormalize",
                 "shift-add 3 terms (hw)"):
        assert abs(results[name][0] - paper[0]) < 4.0, name
    # 3-term shift-add tracks exact bilinear closely — the paper's
    # resource optimization is accuracy-neutral.
    assert abs(results["shift-add 3 terms (hw)"][0] - paper[0]) < 1.5
    # Nearest-neighbour resampling is never *better* than bilinear at
    # the harder scale by a wide margin (kernel quality matters).
    assert results["blocks, nearest kernel"][1] <= paper[1] + 3.0
