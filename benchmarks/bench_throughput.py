"""Throughput-claim reproduction (Section 5 / abstract).

Paper claims, all at 125 MHz on HDTV (1080x1920):

* classifier completes a frame in 1,200,420 cycles — under 10 ms;
* one window result every 36 cycles after a 288-cycle fill;
* 60 fps at two scales (16.6 ms frame interval, extractor-paced).

This bench regenerates each number from the analytic timing model and
also measures the *software* pipeline's stage split on a real frame to
demonstrate the claim the hardware design rests on: histogram
generation dominates, so a feature pyramid amortizes the expensive
stage while an image pyramid repeats it.
"""

import numpy as np

from repro.detect import SlidingWindowDetector
from repro.eval.report import format_table
from repro.hardware import FrameTimingModel

from conftest import emit, emit_snapshot


def test_hardware_timing_claims(benchmark, results_dir):
    model = FrameTimingModel()
    report = benchmark.pedantic(
        lambda: model.frame_report(scales=(1.0, 1.2)), rounds=1, iterations=1
    )

    t1 = model.scale_timing(1.0)
    rows = [
        ["cell grid (HDTV)", f"{model.cell_rows} x {model.cell_cols}", "135 x 240"],
        ["pipeline fill / row", str(model.fill_cycles), "288"],
        ["cycles / cell row", str(t1.cycles_per_row), "8,892 (288 + 36*239)"],
        ["classifier cycles / frame", f"{t1.cycles:,}", "1,200,420"],
        ["classifier time", f"{t1.cycles / model.clock_hz * 1e3:.2f} ms", "< 10 ms"],
        ["extractor cycles / frame", f"{report.extractor_cycles:,}", "2,073,600 (1 px/cycle)"],
        ["frame interval", f"{report.frame_time_s * 1e3:.2f} ms", "16.6 ms"],
        ["throughput", f"{report.frames_per_second:.2f} fps", "60 fps"],
        ["scale-1.2 classifier cycles", f"{model.scale_timing(1.2).cycles:,}", "(second scale, parallel)"],
    ]
    text = format_table(
        ["Quantity", "Model", "Paper"],
        rows,
        title="Throughput reproduction — hardware timing model",
    )
    emit(results_dir, "throughput_hw", text)

    assert t1.cycles == 1_200_420
    assert t1.cycles / model.clock_hz < 0.010
    assert report.frames_per_second > 60.0
    assert report.meets_rate(60.0)


def test_software_stage_split(benchmark, trained_bench_model, results_dir,
                              telemetry_registry):
    """Feature-pyramid vs image-pyramid wall-clock on a real frame.

    The *shape* claim: the image pyramid's cost grows with the scale
    count (it repeats extraction), the feature pyramid's extraction cost
    does not.  The feature-pyramid runs are additionally profiled with
    the telemetry layer; the sub-stage snapshot is persisted as
    ``throughput_sw_telemetry.json`` (the source of the measured column
    in docs/PERFORMANCE.md).
    """
    model, extractor = trained_bench_model
    frame = np.random.default_rng(0).random((480, 640))
    scales = [1.0, 1.2, 1.44, 1.73]

    def run(strategy, telemetry=None):
        det = SlidingWindowDetector(
            model, extractor, strategy=strategy, scales=scales, stride=2,
            telemetry=telemetry,
        )
        return det.detect(frame)

    feature_result = benchmark.pedantic(
        lambda: run("feature"), rounds=3, iterations=1
    )
    image_result = run("image")

    # One more instrumented pass for the per-sub-stage attribution.
    # The detector no longer rewires caller-owned components, so the
    # shared extractor is instrumented explicitly here and detached
    # afterwards (the other benches must stay uninstrumented).
    from repro.telemetry import NULL_TELEMETRY

    extractor.telemetry = telemetry_registry
    run("feature", telemetry=telemetry_registry)
    extractor.telemetry = NULL_TELEMETRY
    emit_snapshot(results_dir, "throughput_sw_telemetry",
                  telemetry_registry.snapshot())

    rows = []
    for name, res in (("feature pyramid", feature_result),
                      ("image pyramid", image_result)):
        t = res.timings
        rows.append(
            [
                name,
                f"{t.extraction * 1e3:.1f}",
                f"{t.pyramid * 1e3:.1f}",
                f"{t.classification * 1e3:.1f}",
                f"{t.total * 1e3:.1f}",
                str(res.n_windows_evaluated),
            ]
        )
    text = format_table(
        ["Pipeline", "extract ms", "pyramid ms", "classify ms", "total ms",
         "windows"],
        rows,
        title=f"Software stage split — 480x640 frame, {len(scales)} scales",
    )
    emit(results_dir, "throughput_sw", text)

    # Extraction once vs extraction per scale.
    assert (
        feature_result.timings.extraction
        < image_result.timings.extraction / 2.0
    )
