"""Thread vs. process backend throughput, persisted as BENCH_parallel.json.

The question this bench answers: at what point does shipping frames to
a warm process pool (``repro.parallel``) beat worker threads?  Threads
scale only as far as NumPy's GIL-released dot products; the process
backend pays a shared-memory copy per frame but runs the Python-level
work (window bookkeeping, NMS, feature scaling) truly concurrently.

Protocol (documented in docs/BENCHMARKS.md):

* frames are pre-rendered once and reused for every cell, so the
  measurement isolates detect + transport cost from synthesis;
* every (backend, workers) cell runs one untimed warmup pass — the
  process pool warm-starts its workers there, so worker fork/build
  cost is excluded, exactly as in steady-state streaming — followed by
  ``ROUNDS`` timed passes of which the best is kept;
* the result document is written to
  ``benchmarks/results/BENCH_parallel.json`` with the environment
  block (cpu count, python) needed to compare runs across machines.

The scaling assertion (process >= single-thread baseline) only applies
on multi-core hosts; on one core the process backend cannot win and is
only asserted to complete correctly.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.eval.report import format_table
from repro.stream import ArraySource, StreamPipeline

from conftest import emit

N_FRAMES = 16
FRAME_SHAPE = (160, 160)
WORKER_COUNTS = (1, 2)
ROUNDS = 3
CELLS = tuple(
    ("thread", w) for w in WORKER_COUNTS
) + tuple(
    ("process", w) for w in WORKER_COUNTS
)


def _run_cell(detector, frames, backend, workers):
    """Best-of-ROUNDS report for one (backend, workers) cell."""
    pipeline = StreamPipeline(
        detector, workers=workers, queue_size=2 * workers, backend=backend
    )
    try:
        best = None
        pipeline.run(ArraySource(frames))  # warmup: pool warm-start
        for _ in range(ROUNDS):
            run = pipeline.run(ArraySource(frames))
            assert run.report.frames_ok == len(frames), (
                f"{backend} x{workers}: "
                f"{run.report.frames_failed} frames failed"
            )
            if best is None or run.report.achieved_fps > best.achieved_fps:
                best = run.report
    finally:
        pipeline.close()
    return best


def test_parallel_backend_throughput(trained_bench_model, results_dir):
    model, _ = trained_bench_model
    detector = MultiScalePedestrianDetector(
        model,
        DetectorConfig(scales=(1.0,), threshold=0.5, stride=2),
    )
    rng = np.random.default_rng(7)
    frames = [rng.random(FRAME_SHAPE) for _ in range(N_FRAMES)]

    cells = []
    for backend, workers in CELLS:
        report = _run_cell(detector, frames, backend, workers)
        cells.append({
            "backend": backend,
            "workers": workers,
            "fps_best": report.achieved_fps,
            "elapsed_s": report.elapsed_s,
            "latency_p50_ms": report.latency_p50_ms,
            "latency_p95_ms": report.latency_p95_ms,
            "worker_utilization": report.worker_utilization,
            "rounds": ROUNDS,
        })

    by_cell = {(c["backend"], c["workers"]): c["fps_best"] for c in cells}
    baseline = by_cell[("thread", 1)]
    document = {
        "bench": "parallel",
        "protocol": {
            "frames": N_FRAMES,
            "frame_shape": list(FRAME_SHAPE),
            "scales": [1.0],
            "stride": 2,
            "rounds": ROUNDS,
            "warmup_runs": 1,
            "selection": "best-of-rounds",
        },
        "results": cells,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    out = results_dir / "BENCH_parallel.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    rows = [
        [
            c["backend"],
            str(c["workers"]),
            f"{c['fps_best']:.2f}",
            f"{c['fps_best'] / baseline:.2f}x",
            f"{c['latency_p50_ms']:.1f}",
            f"{c['worker_utilization']:.2f}",
        ]
        for c in cells
    ]
    text = format_table(
        ["Backend", "Workers", "fps (best)", "vs thread x1", "p50 ms",
         "util"],
        rows,
        title=f"Backend throughput — {N_FRAMES} frames, "
              f"{FRAME_SHAPE[0]}x{FRAME_SHAPE[1]}, 1 scale, stride 2",
    )
    emit(results_dir, "parallel_fps", text)

    assert out.exists()
    # On one core the process backend only pays transport overhead; the
    # beats-the-baseline claim is a multi-core claim (see module doc).
    if (os.cpu_count() or 1) > 1:
        process_best = max(
            by_cell[("process", w)] for w in WORKER_COUNTS
        )
        assert process_best >= baseline, (
            f"process backend best {process_best:.2f} fps fell below the "
            f"single-thread baseline {baseline:.2f} fps on a "
            f"{os.cpu_count()}-core host"
        )
