"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in environments
whose tooling predates PEP 660 editable wheels (e.g. offline boxes
without the ``wheel`` package):  ``python setup.py develop``.
"""

from setuptools import setup

setup()
